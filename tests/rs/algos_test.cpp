// Tests for the scan-built algorithms (compact, radix sort), the block
// distribution arithmetic, and the §2.1 blockwise-aggregation adapter.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "coll/buffer_op.hpp"
#include "coll/gather.hpp"
#include "coll/local_reduce.hpp"
#include "mprt/runtime.hpp"
#include "rs/algos/compact.hpp"
#include "rs/algos/radix_sort.hpp"

namespace {

using namespace rsmpi;
using rs::algos::BlockDist;

template <typename T>
std::vector<T> my_block(const std::vector<T>& all, int p, int rank) {
  const std::size_t n = all.size();
  const std::size_t base = n / static_cast<std::size_t>(p);
  const std::size_t extra = n % static_cast<std::size_t>(p);
  const std::size_t lo = base * static_cast<std::size_t>(rank) +
                         std::min<std::size_t>(rank, extra);
  const std::size_t len = base + (static_cast<std::size_t>(rank) < extra);
  return {all.begin() + static_cast<std::ptrdiff_t>(lo),
          all.begin() + static_cast<std::ptrdiff_t>(lo + len)};
}

// -- BlockDist ----------------------------------------------------------------

TEST(BlockDist, SizesPartitionN) {
  for (const std::int64_t n : {0, 1, 7, 64, 100}) {
    for (const int p : {1, 2, 3, 7, 8, 16}) {
      const BlockDist d{n, p};
      std::int64_t sum = 0;
      for (int r = 0; r < p; ++r) {
        sum += d.size_of(r);
        EXPECT_EQ(d.start_of(r), sum - d.size_of(r));
      }
      EXPECT_EQ(sum, n) << "n=" << n << " p=" << p;
    }
  }
}

TEST(BlockDist, OwnerMatchesStartAndSize) {
  for (const std::int64_t n : {1, 7, 64, 100, 1000}) {
    for (const int p : {1, 2, 3, 7, 8, 16}) {
      const BlockDist d{n, p};
      for (std::int64_t pos = 0; pos < n; ++pos) {
        const int owner = d.owner_of(pos);
        EXPECT_GE(pos, d.start_of(owner)) << "n=" << n << " p=" << p;
        EXPECT_LT(pos, d.start_of(owner) + d.size_of(owner))
            << "n=" << n << " p=" << p << " pos=" << pos;
      }
    }
  }
}

// -- compact ------------------------------------------------------------------

class CompactSweep : public ::testing::TestWithParam<int> {};

TEST_P(CompactSweep, MatchesSerialFilterWithBalancedBlocks) {
  const int p = GetParam();
  std::mt19937 rng(64);
  std::uniform_int_distribution<int> dist(-100, 100);
  std::vector<int> data(533);
  for (auto& x : data) x = dist(rng);

  std::vector<int> want;
  for (int x : data) {
    if (x % 3 == 0) want.push_back(x);
  }

  mprt::run(p, [&](mprt::Comm& comm) {
    const auto mine = my_block(data, comm.size(), comm.rank());
    const auto got = rs::algos::compact<int>(
        comm, mine, [](int x) { return x % 3 == 0; });

    // Balanced: this rank's share of the survivors.
    EXPECT_EQ(got, my_block(want, comm.size(), comm.rank()));
  });
}

TEST_P(CompactSweep, NothingSurvives) {
  const int p = GetParam();
  mprt::run(p, [&](mprt::Comm& comm) {
    const std::vector<int> mine = {1, 3, 5};
    const auto got =
        rs::algos::compact<int>(comm, mine, [](int) { return false; });
    EXPECT_TRUE(got.empty());
  });
}

TEST_P(CompactSweep, EverythingSurvivesIsRebalancing) {
  // With a uniform predicate, compact is a pure rebalance: ranks with
  // uneven input sizes end up with even blocks of the same global array.
  const int p = GetParam();
  mprt::run(p, [&](mprt::Comm& comm) {
    // Rank r holds r+1 elements: global array is 1, 2, 2, 3, 3, 3, ...
    std::vector<int> mine(static_cast<std::size_t>(comm.rank()) + 1,
                          comm.rank() + 1);
    const auto got =
        rs::algos::compact<int>(comm, mine, [](int) { return true; });
    std::vector<int> all;
    for (int r = 0; r < comm.size(); ++r) {
      all.insert(all.end(), static_cast<std::size_t>(r) + 1, r + 1);
    }
    EXPECT_EQ(got, my_block(all, comm.size(), comm.rank()));
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, CompactSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 16));

// -- radix sort ----------------------------------------------------------------

class RadixSweep : public ::testing::TestWithParam<int> {};

TEST_P(RadixSweep, SortsUniformKeys) {
  const int p = GetParam();
  std::mt19937 rng(65);
  std::uniform_int_distribution<std::uint32_t> dist;
  std::vector<std::uint32_t> data(700);
  for (auto& x : data) x = dist(rng);

  auto want = data;
  std::sort(want.begin(), want.end());

  mprt::run(p, [&](mprt::Comm& comm) {
    auto mine = my_block(data, comm.size(), comm.rank());
    const auto got = rs::algos::radix_sort(comm, std::move(mine));
    EXPECT_EQ(got, my_block(want, comm.size(), comm.rank()));
  });
}

TEST_P(RadixSweep, SortsWithSmallDigits) {
  const int p = GetParam();
  std::mt19937 rng(66);
  std::uniform_int_distribution<std::uint16_t> dist;
  std::vector<std::uint16_t> data(256);
  for (auto& x : data) x = dist(rng);
  auto want = data;
  std::sort(want.begin(), want.end());

  mprt::run(p, [&](mprt::Comm& comm) {
    auto mine = my_block(data, comm.size(), comm.rank());
    const auto got = rs::algos::radix_sort(comm, std::move(mine),
                                           /*digit_bits=*/4);
    EXPECT_EQ(got, my_block(want, comm.size(), comm.rank()));
  });
}

TEST_P(RadixSweep, HandlesDuplicatesAndSkew) {
  const int p = GetParam();
  std::vector<std::uint32_t> data;
  for (int i = 0; i < 300; ++i) {
    data.push_back(static_cast<std::uint32_t>(i % 5));  // heavy duplicates
  }
  auto want = data;
  std::sort(want.begin(), want.end());
  mprt::run(p, [&](mprt::Comm& comm) {
    auto mine = my_block(data, comm.size(), comm.rank());
    const auto got = rs::algos::radix_sort(comm, std::move(mine));
    EXPECT_EQ(got, my_block(want, comm.size(), comm.rank()));
  });
}

TEST_P(RadixSweep, FewerKeysThanRanks) {
  const int p = GetParam();
  const std::vector<std::uint32_t> data = {9, 1, 5};
  std::vector<std::uint32_t> want = {1, 5, 9};
  mprt::run(p, [&](mprt::Comm& comm) {
    auto mine = my_block(data, comm.size(), comm.rank());
    const auto got = rs::algos::radix_sort(comm, std::move(mine));
    EXPECT_EQ(got, my_block(want, comm.size(), comm.rank()));
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, RadixSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 16));

TEST(RadixSort, RejectsBadDigitWidth) {
  EXPECT_THROW(mprt::run(1,
                         [](mprt::Comm& comm) {
                           std::vector<std::uint32_t> v = {1};
                           (void)rs::algos::radix_sort(comm, std::move(v), 0);
                         }),
               ArgumentError);
}

// -- BlockwiseOp (§2.1: aggregating mink itself) --------------------------------

TEST(BlockwiseOp, AggregatedMinkComputesElementwiseKMins) {
  // Each rank holds m = 3 vectors of k = 4 candidates; the aggregated
  // reduction yields, per vector slot, the 4 smallest across ranks.
  constexpr std::size_t kK = 4, kM = 3;
  mprt::run(5, [](mprt::Comm& comm) {
    std::vector<int> buf(kK * kM);
    coll::BlockwiseOp<int, coll::LocalMinK<int>> op{kK};
    for (std::size_t m = 0; m < kM; ++m) {
      for (std::size_t j = 0; j < kK; ++j) {
        // Ascending within each block, as LocalMinK maintains.
        buf[m * kK + j] = static_cast<int>(
            100 * m + 10 * j + ((comm.rank() * 7 + static_cast<int>(m)) % 5));
      }
    }
    coll::local_allreduce(comm, std::span<int>(buf), op);

    // Oracle: rebuild all ranks' blocks and take the k smallest per slot.
    for (std::size_t m = 0; m < kM; ++m) {
      std::vector<int> pool;
      for (int r = 0; r < comm.size(); ++r) {
        for (std::size_t j = 0; j < kK; ++j) {
          pool.push_back(static_cast<int>(
              100 * m + 10 * j + ((r * 7 + static_cast<int>(m)) % 5)));
        }
      }
      std::sort(pool.begin(), pool.end());
      for (std::size_t j = 0; j < kK; ++j) {
        EXPECT_EQ(buf[m * kK + j], pool[j]) << "slot " << m << " pos " << j;
      }
    }
  });
}

TEST(BlockwiseOp, IdentFillsEachBlock) {
  coll::BlockwiseOp<int, coll::LocalMinK<int>> op{2};
  std::vector<int> buf(6);
  op.ident(buf);
  for (int v : buf) EXPECT_EQ(v, std::numeric_limits<int>::max());
}

}  // namespace
