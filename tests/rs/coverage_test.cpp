// Cross-feature coverage: combinations the per-module suites don't hit —
// adapters stacked on adapters, scans of stateful wrappers, non-vector
// input ranges, and operators driven through subcommunicators.
#include <gtest/gtest.h>

#include <deque>
#include <list>
#include <random>
#include <vector>

#include "mprt/runtime.hpp"
#include "rs/ops/ops.hpp"
#include "rs/reduce.hpp"
#include "rs/scan.hpp"
#include "rs/serial.hpp"

namespace {

using namespace rsmpi;
namespace ops = rs::ops;

template <typename T>
std::vector<T> my_block(const std::vector<T>& all, int p, int rank) {
  const std::size_t n = all.size();
  const std::size_t base = n / static_cast<std::size_t>(p);
  const std::size_t extra = n % static_cast<std::size_t>(p);
  const std::size_t lo = base * static_cast<std::size_t>(rank) +
                         std::min<std::size_t>(rank, extra);
  const std::size_t len = base + (static_cast<std::size_t>(rank) < extra);
  return {all.begin() + static_cast<std::ptrdiff_t>(lo),
          all.begin() + static_cast<std::ptrdiff_t>(lo + len)};
}

TEST(Coverage, ReduceAcceptsNonContiguousRanges) {
  // The reduction is range-generic, not span-bound.
  mprt::run(3, [](mprt::Comm& comm) {
    std::list<int> mine;
    for (int i = 0; i < 20; ++i) mine.push_back(comm.rank() * 20 + i);
    EXPECT_EQ(rs::reduce(comm, mine, ops::Sum<long>{}), 60 * 59 / 2);

    std::deque<int> dq(mine.begin(), mine.end());
    EXPECT_EQ(rs::reduce(comm, dq, ops::Max<int>{}), 59);
  });
}

TEST(Coverage, FuseOfFuseRunsThreeReductions) {
  const std::vector<int> v = {3, -1, 7, 2};
  const auto [mins, rest] = rs::serial::reduce(
      v, ops::fuse(ops::Min<int>{}, ops::fuse(ops::Max<int>{},
                                              ops::Sum<long>{})));
  EXPECT_EQ(mins, -1);
  EXPECT_EQ(rest.first, 7);
  EXPECT_EQ(rest.second, 11);
}

TEST(Coverage, SegmentedWithHeapStateInnerScan) {
  // Segmented<MinK>: restartable running top-k through the parallel scan,
  // with save/load-serialized inner state.
  std::vector<ops::Seg<int>> data;
  const std::vector<int> values = {9, 4, 7, 2, 8, 1, 6, 3};
  for (std::size_t i = 0; i < values.size(); ++i) {
    data.push_back({values[i], i == 0 || i == 4});
  }
  const auto op = ops::Segmented<ops::MinK<int>, int>(ops::MinK<int>(2));
  const auto want = rs::serial::scan(data, op);

  for (const int p : {1, 2, 3, 5, 8}) {
    mprt::run(p, [&](mprt::Comm& comm) {
      const auto mine = my_block(data, comm.size(), comm.rank());
      EXPECT_EQ(rs::scan(comm, mine, op),
                my_block(want, comm.size(), comm.rank()))
          << "p=" << p;
    });
  }
}

TEST(Coverage, MeanVarScanGivesRunningStatistics) {
  std::mt19937 rng(9);
  std::normal_distribution<double> dist(2.0, 1.0);
  std::vector<double> data(128);
  for (auto& x : data) x = dist(rng);
  const auto want = rs::serial::scan(data, ops::MeanVar{});

  mprt::run(4, [&](mprt::Comm& comm) {
    const auto mine = my_block(data, comm.size(), comm.rank());
    const auto got = rs::scan(comm, mine, ops::MeanVar{});
    const auto want_slice = my_block(want, comm.size(), comm.rank());
    ASSERT_EQ(got.size(), want_slice.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].count, want_slice[i].count);
      EXPECT_NEAR(got[i].mean, want_slice[i].mean, 1e-9);
      EXPECT_NEAR(got[i].variance, want_slice[i].variance, 1e-9);
    }
  });
}

TEST(Coverage, GlobalViewOpsOnSubcommunicators) {
  // Each half reduces its own sketch; results differ between halves and
  // match each half's serial oracle.
  mprt::run(8, [](mprt::Comm& world) {
    mprt::Comm half = world.split(world.rank() / 4, world.rank());
    std::vector<long> mine;
    for (int i = 0; i < 100; ++i) {
      mine.push_back((world.rank() / 4) * 1'000'000 + i);
    }
    const double distinct =
        rs::reduce(half, mine, ops::HyperLogLog<long>(10));

    // Serial oracle over the half's concatenation: 400 distinct values
    // (4 ranks x 100, all distinct within the half).
    std::vector<long> all;
    for (int r = 0; r < 4; ++r) {
      for (int i = 0; i < 100; ++i) {
        all.push_back((world.rank() / 4) * 1'000'000 + i);
      }
    }
    const double want = rs::serial::reduce(all, ops::HyperLogLog<long>(10));
    EXPECT_EQ(distinct, want);
    // All 4 ranks of the half share 100 distinct values.
    EXPECT_NEAR(distinct, 100.0, 10.0);
  });
}

TEST(Coverage, XscanStateWithNonTrivialOp) {
  // Exclusive prefix of Counts states: rank r sees the bucket occupancy
  // of all earlier ranks.
  mprt::run(4, [](mprt::Comm& comm) {
    std::vector<int> mine(10, comm.rank() % 3);  // ten of one bucket
    const auto prefix = rs::xscan_state(comm, mine, ops::Counts(3));
    const auto counts = prefix.red_gen();
    long total = 0;
    for (long c : counts) total += c;
    EXPECT_EQ(total, comm.rank() * 10);
  });
}

TEST(Coverage, ScanKindsAgreeWithEachOtherViaAccum) {
  // For every op with gen(): inclusive[i] == combine(exclusive-state, x).
  // Spot-checked through MinK.
  const std::vector<int> data = {5, 3, 8, 1, 9, 2};
  const auto incl = rs::serial::scan(data, ops::MinK<int>(2));
  const auto excl = rs::serial::xscan(data, ops::MinK<int>(2));
  for (std::size_t i = 0; i < data.size(); ++i) {
    ops::MinK<int> st(2);
    // Rebuild the exclusive state by accumulating the prefix...
    for (std::size_t j = 0; j < i; ++j) st.accum(data[j]);
    EXPECT_EQ(st.gen(), excl[i]);
    st.accum(data[i]);
    EXPECT_EQ(st.gen(), incl[i]);
  }
}

}  // namespace
