// Property tests for the global-view reduction (Listing 2): for every
// operator and every rank count, the parallel result over block-distributed
// data must equal the sequential oracle over the concatenation — including
// when some ranks hold no data, when the operator is non-commutative, and
// for every root of reduce_root.
#include <gtest/gtest.h>

#include <numeric>
#include <random>
#include <string>
#include <vector>

#include "mprt/runtime.hpp"
#include "rs/ops/ops.hpp"
#include "rs/reduce.hpp"
#include "rs/serial.hpp"

namespace {

using namespace rsmpi;
namespace ops = rs::ops;
namespace serial = rs::serial;

/// Deterministic global dataset; tests slice it per rank.
std::vector<int> global_data(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> dist(-10'000, 10'000);
  std::vector<int> v(n);
  for (auto& x : v) x = dist(rng);
  return v;
}

/// Rank r's block of an n-element array over p ranks.
template <typename T>
std::vector<T> my_block(const std::vector<T>& all, int p, int rank) {
  const std::size_t n = all.size();
  const std::size_t base = n / static_cast<std::size_t>(p);
  const std::size_t extra = n % static_cast<std::size_t>(p);
  const std::size_t lo = base * static_cast<std::size_t>(rank) +
                         std::min<std::size_t>(rank, extra);
  const std::size_t len = base + (static_cast<std::size_t>(rank) < extra);
  return {all.begin() + static_cast<std::ptrdiff_t>(lo),
          all.begin() + static_cast<std::ptrdiff_t>(lo + len)};
}

class GlobalReduceSweep : public ::testing::TestWithParam<int> {};

TEST_P(GlobalReduceSweep, SumMatchesSerial) {
  const int p = GetParam();
  const auto data = global_data(1000, 42);
  const long want = serial::reduce(data, ops::Sum<long>{});
  mprt::run(p, [&](mprt::Comm& comm) {
    const auto mine = my_block(data, comm.size(), comm.rank());
    EXPECT_EQ(rs::reduce(comm, mine, ops::Sum<long>{}), want);
  });
}

TEST_P(GlobalReduceSweep, MinKMatchesSerial) {
  const int p = GetParam();
  const auto data = global_data(777, 43);
  const auto want = serial::reduce(data, ops::MinK<int>(10));
  mprt::run(p, [&](mprt::Comm& comm) {
    const auto mine = my_block(data, comm.size(), comm.rank());
    EXPECT_EQ(rs::reduce(comm, mine, ops::MinK<int>(10)), want);
  });
}

TEST_P(GlobalReduceSweep, MinIMatchesSerial) {
  const int p = GetParam();
  const auto raw = global_data(512, 44);
  std::vector<ops::Located<int>> data;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    data.push_back({raw[i], static_cast<long>(i)});
  }
  const auto want = serial::reduce(data, ops::MinI<int>{});
  mprt::run(p, [&](mprt::Comm& comm) {
    const auto mine = my_block(data, comm.size(), comm.rank());
    const auto got = rs::reduce(comm, mine, ops::MinI<int>{});
    EXPECT_EQ(got.value, want.value);
    EXPECT_EQ(got.index, want.index);
  });
}

TEST_P(GlobalReduceSweep, CountsMatchesSerial) {
  const int p = GetParam();
  std::vector<int> data;
  std::mt19937 rng(45);
  std::uniform_int_distribution<int> dist(0, 7);
  for (int i = 0; i < 900; ++i) data.push_back(dist(rng));
  const auto want = serial::reduce(data, ops::Counts(8));
  mprt::run(p, [&](mprt::Comm& comm) {
    const auto mine = my_block(data, comm.size(), comm.rank());
    EXPECT_EQ(rs::reduce(comm, mine, ops::Counts(8)), want);
  });
}

TEST_P(GlobalReduceSweep, SortedDetectsGlobalOrder) {
  const int p = GetParam();
  std::vector<int> sorted_data(600);
  std::iota(sorted_data.begin(), sorted_data.end(), -300);
  mprt::run(p, [&](mprt::Comm& comm) {
    const auto mine = my_block(sorted_data, comm.size(), comm.rank());
    EXPECT_TRUE(rs::reduce(comm, mine, ops::Sorted<int>{}));
  });
}

TEST_P(GlobalReduceSweep, SortedDetectsBoundaryViolation) {
  // Globally sorted within each block but with one cross-block descent —
  // only the combine boundary check can catch it.
  const int p = GetParam();
  if (p < 2) GTEST_SKIP() << "needs a rank boundary";
  mprt::run(p, [&](mprt::Comm& comm) {
    // Block r holds [100r .. 100r+9], except block 1 starts below block
    // 0's maximum.
    std::vector<int> mine(10);
    const int base = comm.rank() == 1 ? 5 : comm.rank() * 100;
    std::iota(mine.begin(), mine.end(), base);
    EXPECT_FALSE(rs::reduce(comm, mine, ops::Sorted<int>{}));
  });
}

TEST_P(GlobalReduceSweep, ConcatPreservesGlobalOrder) {
  const int p = GetParam();
  const std::string text = "the quick brown fox jumps over the lazy dog";
  const std::vector<char> data(text.begin(), text.end());
  mprt::run(p, [&](mprt::Comm& comm) {
    const auto mine = my_block(data, comm.size(), comm.rank());
    EXPECT_EQ(rs::reduce(comm, mine, ops::Concat{}), text);
  });
}

TEST_P(GlobalReduceSweep, MeanVarMatchesSerial) {
  const int p = GetParam();
  std::mt19937 rng(46);
  std::normal_distribution<double> dist(3.0, 1.5);
  std::vector<double> data(1200);
  for (auto& x : data) x = dist(rng);
  const auto want = serial::reduce(data, ops::MeanVar{});
  mprt::run(p, [&](mprt::Comm& comm) {
    const auto mine = my_block(data, comm.size(), comm.rank());
    const auto got = rs::reduce(comm, mine, ops::MeanVar{});
    EXPECT_EQ(got.count, want.count);
    EXPECT_NEAR(got.mean, want.mean, 1e-9);
    EXPECT_NEAR(got.variance, want.variance, 1e-6);
  });
}

TEST_P(GlobalReduceSweep, EmptyRanksAreIdentity) {
  // Fewer elements than ranks: most ranks hold nothing.
  const int p = GetParam();
  const std::vector<int> data = {4, 7};
  const auto want_sum = serial::reduce(data, ops::Sum<long>{});
  mprt::run(p, [&](mprt::Comm& comm) {
    const auto mine = my_block(data, comm.size(), comm.rank());
    EXPECT_EQ(rs::reduce(comm, mine, ops::Sum<long>{}), want_sum);
    EXPECT_TRUE(rs::reduce(comm, mine, ops::Sorted<int>{}));
    EXPECT_EQ(rs::reduce(comm, mine, ops::MinK<int>(2)),
              (std::vector<int>{4, 7}));
  });
}

TEST_P(GlobalReduceSweep, EntirelyEmptyInput) {
  const int p = GetParam();
  mprt::run(p, [&](mprt::Comm& comm) {
    const std::vector<int> nothing;
    EXPECT_EQ(rs::reduce(comm, nothing, ops::Sum<long>{}), 0);
    EXPECT_TRUE(rs::reduce(comm, nothing, ops::Sorted<int>{}));
  });
}

TEST_P(GlobalReduceSweep, ReduceRootDeliversOnlyToRoot) {
  const int p = GetParam();
  const auto data = global_data(300, 47);
  const long want = serial::reduce(data, ops::Sum<long>{});
  mprt::run(p, [&](mprt::Comm& comm) {
    for (int root = 0; root < comm.size(); ++root) {
      const auto mine = my_block(data, comm.size(), comm.rank());
      const auto got = rs::reduce_root(comm, root, mine, ops::Sum<long>{});
      if (comm.rank() == root) {
        ASSERT_TRUE(got.has_value());
        EXPECT_EQ(*got, want);
      } else {
        EXPECT_FALSE(got.has_value());
      }
    }
  });
}

TEST_P(GlobalReduceSweep, ReduceRootNonCommutative) {
  const int p = GetParam();
  const std::string text = "ordering-must-hold";
  const std::vector<char> data(text.begin(), text.end());
  mprt::run(p, [&](mprt::Comm& comm) {
    const int root = comm.size() - 1;
    const auto mine = my_block(data, comm.size(), comm.rank());
    const auto got = rs::reduce_root(comm, root, mine, ops::Concat{});
    if (comm.rank() == root) {
      ASSERT_TRUE(got.has_value());
      EXPECT_EQ(*got, text);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, GlobalReduceSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 16));

// -- Input flexibility ---------------------------------------------------------

TEST(GlobalReduce, AcceptsTransformViews) {
  // The paper's mini call site builds the (value, index) tuples with an
  // array expression; the C++ analogue is a lazy transform view.
  mprt::run(4, [](mprt::Comm& comm) {
    constexpr int kPer = 25;
    std::vector<int> raw(kPer);
    for (int i = 0; i < kPer; ++i) {
      raw[static_cast<std::size_t>(i)] =
          ((comm.rank() * kPer + i) * 37) % 101;
    }
    const long base = static_cast<long>(comm.rank()) * kPer;
    auto located = std::views::iota(0, kPer) |
                   std::views::transform([&](int i) {
                     return ops::Located<int>{
                         raw[static_cast<std::size_t>(i)], base + i};
                   });
    const auto got = rs::reduce(comm, located, ops::MinI<int>{});

    // Serial oracle over the reconstructed global array.
    std::vector<ops::Located<int>> all;
    for (int r = 0; r < comm.size(); ++r) {
      for (int i = 0; i < kPer; ++i) {
        all.push_back(
            {((r * kPer + i) * 37) % 101, static_cast<long>(r) * kPer + i});
      }
    }
    const auto want = rs::serial::reduce(all, ops::MinI<int>{});
    EXPECT_EQ(got.value, want.value);
    EXPECT_EQ(got.index, want.index);
  });
}

TEST(GlobalReduce, StateReuseAcrossGenerators) {
  // reduce_state exposes the combined state so several generate functions
  // can share one combine tree.
  mprt::run(3, [](mprt::Comm& comm) {
    std::vector<int> mine;
    for (int i = 0; i < 30; ++i) mine.push_back(comm.rank() * 30 + i);
    auto state = rs::reduce_state(comm, mine, ops::Counts(90));
    const auto counts = state.red_gen();
    EXPECT_EQ(counts.size(), 90u);
    for (long c : counts) EXPECT_EQ(c, 1);
  });
}

}  // namespace
