// Compile-time and dispatch tests for the operator concept machinery.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "rs/op_concepts.hpp"
#include "rs/ops/ops.hpp"

namespace {

using namespace rsmpi::rs;
namespace ops = rsmpi::rs::ops;

// -- Concept satisfaction (compile-time contracts of the public API) --------

static_assert(ReductionOp<ops::Sum<int>, int>);
static_assert(ReductionOp<ops::MinK<int>, int>);
static_assert(ReductionOp<ops::Counts, int>);
static_assert(ReductionOp<ops::Sorted<int>, int>);
static_assert(ReductionOp<ops::MeanVar, double>);
static_assert(ReductionOp<ops::Concat, char>);
static_assert(ReductionOp<ops::MinI<double>, ops::Located<double>>);
static_assert(
    ReductionOp<ops::TopBottomK<double>, ops::Located<double>>);

static_assert(ScanOp<ops::Counts, int>);
static_assert(ScanOp<ops::Sum<long>, long>);
static_assert(ScanOp<ops::Concat, char>);

// An int is not an operator.
static_assert(!ReductionOp<int, int>);

// Sorted has pre_accum but not post_accum.
static_assert(HasPreAccum<ops::Sorted<int>, int>);
static_assert(!HasPostAccum<ops::Sorted<int>, int>);
static_assert(!HasPreAccum<ops::Sum<int>, int>);

// Counts splits its generate functions; Sum shares one.
static_assert(HasRedGen<ops::Counts>);
static_assert(HasScanGen<ops::Counts, int>);
static_assert(!HasGen<ops::Counts>);
static_assert(HasGen<ops::Sum<int>>);
static_assert(!HasRedGen<ops::Sum<int>>);

// Serialization routes: trivially copyable vs save/load.
static_assert(std::is_trivially_copyable_v<ops::Sum<int>>);
static_assert(!std::is_trivially_copyable_v<ops::MinK<int>>);
static_assert(HasSaveLoad<ops::MinK<int>>);
static_assert(HasSaveLoad<ops::Concat>);
static_assert(!HasSaveLoad<ops::Sum<int>>);

// -- Commutativity defaults --------------------------------------------------

struct PlainOp {
  void accum(const int&) {}
  void combine(const PlainOp&) {}
  int gen() const { return 0; }
};

TEST(OpConcepts, CommutativeDefaultsTrueWhenUnspecified) {
  EXPECT_TRUE(op_commutative<PlainOp>());
  EXPECT_TRUE(op_commutative<ops::Sum<int>>());
  EXPECT_FALSE(op_commutative<ops::Sorted<int>>());
  EXPECT_FALSE(op_commutative<ops::Concat>());
}

// -- Generate dispatch -------------------------------------------------------

TEST(OpConcepts, RedResultPrefersRedGen) {
  ops::Counts c(3);
  c.accum(1);
  c.accum(1);
  // Counts has no gen(); red_result must find red_gen().
  EXPECT_EQ(red_result(c), (std::vector<long>{0, 2, 0}));
}

TEST(OpConcepts, ScanResultPrefersScanGen) {
  ops::Counts c(3);
  c.accum(1);
  c.accum(1);
  c.accum(2);
  EXPECT_EQ(scan_result(c, 1), 2);
  EXPECT_EQ(scan_result(c, 2), 1);
}

TEST(OpConcepts, ScanResultFallsBackToGen) {
  ops::Sum<int> s;
  s.accum(4);
  s.accum(5);
  EXPECT_EQ(scan_result(s, 99), 9);  // gen() ignores the position value
}

// -- Serialization round trips ----------------------------------------------

TEST(OpConcepts, TriviallyCopyableSaveLoadRoundTrip) {
  ops::Sum<long> s;
  s.accum(41);
  const auto buf = save_op(s);
  const auto restored = load_op(ops::Sum<long>{}, buf);
  EXPECT_EQ(restored.gen(), 41);
}

TEST(OpConcepts, SaveLoadOpRoundTrip) {
  ops::MinK<int> m(3);
  m.accum(5);
  m.accum(1);
  m.accum(9);
  m.accum(2);
  const auto buf = save_op(m);
  const auto restored = load_op(ops::MinK<int>(3), buf);
  EXPECT_EQ(restored.gen(), (std::vector<int>{1, 2, 5}));
}

TEST(OpConcepts, LoadOpRejectsTrailingBytes) {
  ops::Concat c;
  c.accum('x');
  auto buf = save_op(c);
  buf.push_back(std::byte{0});
  EXPECT_THROW((void)load_op(ops::Concat{}, buf), rsmpi::ProtocolError);
}

TEST(OpConcepts, LoadOpRejectsMismatchedPrototype) {
  ops::MinK<int> m(3);
  const auto buf = save_op(m);
  EXPECT_THROW((void)load_op(ops::MinK<int>(5), buf), rsmpi::ProtocolError);
}

}  // namespace
