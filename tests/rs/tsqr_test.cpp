// Flagship verification for rs::ops::TSQR (ISSUE 9 tentpole):
//
//   * unit contract — argument validation, identity combines, equality,
//     serialization (save/load, zero-copy save_into/load_from,
//     combine_from_bytes), and the column-panel hooks including the
//     streamed-session demux and its out-of-order rejection;
//   * bitwise schedule sweep — every blocking schedule name, the auto
//     dispatch, the pipelined binomial tree at several segment sizes, and
//     the async state machine all reproduce verify::binomial_fold's
//     bracketing exactly, at p in {2..16}, fault-free and under benign
//     fault plans;
//   * numerical oracle — the reduced R agrees with a serial Householder
//     factorization: ||QtQ - I||inf and ||A - QR||/||A|| within
//     100 * eps * cols for every benched shape (the micro_tsqr gate);
//   * svc windows — TSQR is not invertible, so WindowedStream must take
//     the two-stack path; tumbling windows reproduce the left fold
//     bitwise.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <cstdlib>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "mprt/runtime.hpp"
#include "mprt/sim.hpp"
#include "par/do_all.hpp"
#include "rs/async.hpp"
#include "rs/ops/tsqr.hpp"
#include "rs/reduce.hpp"
#include "rs/serial.hpp"
#include "rs/state_exchange.hpp"
#include "svc/window.hpp"
#include "util/bytes.hpp"
#include "util/dense_qr.hpp"
#include "util/error.hpp"
#include "verify/registry.hpp"

namespace {

using namespace rsmpi;
namespace ops = rs::ops;
namespace qr = util::qr;
using mprt::Comm;
using mprt::SimConfig;
using rs::save_op;
using rs::detail::Schedule;

/// Deterministic row entries: small rationals, exact on every platform,
/// token-distinct so combine orders produce bit-distinct rounding.
std::vector<double> make_row(int rank, std::size_t i, std::size_t cols) {
  std::vector<double> row(cols);
  for (std::size_t c = 0; c < cols; ++c) {
    const int t = rank * 131 + static_cast<int>(i) * 31 + static_cast<int>(c) * 7;
    row[c] = static_cast<double>(t % 211) / 8.0 - 13.0;
  }
  return row;
}

/// Per-rank accumulated state over `rows_per_rank` deterministic rows.
ops::TSQR local_state(int rank, std::size_t rows_per_rank, std::size_t cols) {
  ops::TSQR s(cols);
  for (std::size_t i = 0; i < rows_per_rank; ++i) {
    s.accum(make_row(rank, i, cols));
  }
  return s;
}

/// The ordered-schedule oracle: per-rank states folded along the binomial
/// reduce tree's bracketing (the combine order every order-preserving
/// path in the runtime performs).
ops::TSQR binomial_oracle(int p, std::size_t rows_per_rank, std::size_t cols) {
  std::vector<ops::TSQR> states;
  for (int r = 0; r < p; ++r) states.push_back(local_state(r, rows_per_rank, cols));
  return verify::binomial_fold(std::move(states));
}

/// What the production local accumulate produces under the *ambient* env:
/// the serial fold at pool width 1 (or a single chunk), the canonical
/// chunked fold otherwise — mirroring par::accumulate_indexed so the
/// end-to-end tests stay bitwise-pinned when CI forces a wide pool
/// (RSMPI_LOCAL_THREADS=4, small grain) onto this suite.
ops::TSQR ambient_local_state(int rank, std::size_t rows_per_rank,
                              std::size_t cols) {
  const char* raw = std::getenv("RSMPI_LOCAL_THREADS");
  const int width = raw != nullptr && *raw != '\0' ? std::atoi(raw) : 1;
  const std::size_t grain = par::grain_from_env();
  const std::size_t nchunks = par::chunk_count(rows_per_rank, grain);
  if (nchunks <= 1 || width <= 1) {
    return local_state(rank, rows_per_rank, cols);
  }
  ops::TSQR op(cols);
  for (std::size_t chunk = 0; chunk < nchunks; ++chunk) {
    const std::size_t lo = chunk * grain;
    const std::size_t hi = std::min(rows_per_rank, lo + grain);
    ops::TSQR state(cols);
    for (std::size_t i = lo; i < hi; ++i) state.accum(make_row(rank, i, cols));
    op.combine(state);
  }
  return op;
}

/// binomial_oracle over ambient_local_state — the expectation for tests
/// that drive the full production path (pool accumulate + exchange).
ops::TSQR ambient_oracle(int p, std::size_t rows_per_rank, std::size_t cols) {
  std::vector<ops::TSQR> states;
  for (int r = 0; r < p; ++r) {
    states.push_back(ambient_local_state(r, rows_per_rank, cols));
  }
  return verify::binomial_fold(std::move(states));
}

// --- unit contract ----------------------------------------------------------

TEST(Tsqr, ArgumentValidation) {
  EXPECT_THROW(ops::TSQR(0), ArgumentError);
  ops::TSQR op(3);
  EXPECT_EQ(op.cols(), 3u);
  EXPECT_THROW(op.accum({1.0, 2.0}), ArgumentError);
  EXPECT_THROW(op.combine(ops::TSQR(4)), ProtocolError);
  EXPECT_THROW(static_cast<void>(ops::TSQR(3).gen().entry(0, 3)),
               ArgumentError);
}

TEST(Tsqr, DiagonalIsNonnegativeByConstruction) {
  ops::TSQR op = local_state(0, 40, 5);
  ops::TSQR other = local_state(1, 40, 5);
  op.combine(other);
  const auto result = op.gen();
  for (std::size_t j = 0; j < 5; ++j) {
    EXPECT_GE(result.entry(j, j), 0.0) << "column " << j;
  }
}

TEST(Tsqr, IdentityCombinesAreBitwiseExact) {
  const ops::TSQR x = local_state(2, 25, 4);
  ops::TSQR left(4);
  left.combine(x);  // identity (+) x
  EXPECT_EQ(save_op(left), save_op(x));
  ops::TSQR right = x;
  right.combine(ops::TSQR(4));  // x (+) identity
  EXPECT_EQ(save_op(right), save_op(x));
}

TEST(Tsqr, SerializationRoundTripsBitwise) {
  const ops::TSQR src = local_state(3, 30, 6);
  const auto bytes_saved = save_op(src);

  ops::TSQR via_load(6);
  {
    bytes::Reader r(bytes_saved);
    via_load.load(r);
  }
  EXPECT_EQ(save_op(via_load), bytes_saved);

  // Zero-copy pair: save_into writes the same bytes, load_from reads them.
  bytes::Writer w;
  src.save_into(w);
  ops::TSQR via_span(6);
  {
    bytes::Reader r(w.view());
    via_span.load_from(r);
  }
  EXPECT_EQ(save_op(via_span), bytes_saved);

  ops::TSQR wrong(5);
  bytes::Reader r(bytes_saved);
  EXPECT_THROW(wrong.load(r), ProtocolError);
}

TEST(Tsqr, CombineFromBytesMatchesCombine) {
  const ops::TSQR peer = local_state(4, 20, 5);
  ops::TSQR a = local_state(5, 20, 5);
  ops::TSQR b = a;
  a.combine(peer);
  b.combine_from_bytes(save_op(peer));
  EXPECT_EQ(save_op(a), save_op(b));
  EXPECT_THROW(b.combine_from_bytes(save_op(local_state(0, 5, 4))),
               ProtocolError);
}

TEST(Tsqr, PanelHooksRoundTripAndValidate) {
  const ops::TSQR src = local_state(6, 30, 7);
  EXPECT_EQ(src.part_extent(), 7u);
  // Column j weighs (j+1) doubles — panels are inherently uneven.
  EXPECT_EQ(src.part_bytes(0, 1), sizeof(double));
  EXPECT_EQ(src.part_bytes(6, 7), 7 * sizeof(double));
  EXPECT_THROW(static_cast<void>(src.part_bytes(3, 2)), ProtocolError);
  EXPECT_THROW(static_cast<void>(src.part_bytes(0, 8)), ProtocolError);

  ops::TSQR dst(7);
  for (std::size_t lo = 0; lo < 7; lo += 3) {  // widths 3,3,1 — odd splits
    const std::size_t hi = std::min<std::size_t>(7, lo + 3);
    bytes::Writer w;
    src.save_part(lo, hi, w);
    EXPECT_EQ(w.size(), src.part_bytes(lo, hi));
    dst.load_part(lo, hi, w.view());
  }
  EXPECT_EQ(save_op(dst), save_op(src));
}

TEST(Tsqr, PanelCombineRejectsOutOfOrderArrival) {
  ops::TSQR into = local_state(7, 12, 4);
  const ops::TSQR peer = local_state(8, 12, 4);
  bytes::Writer tail;
  peer.save_part(2, 4, tail);
  // No session expects column 2: nothing started at column 0.
  EXPECT_THROW(into.combine_part(2, 4, tail.view()), ProtocolError);
  // Size validation.
  bytes::Writer head;
  peer.save_part(0, 2, head);
  EXPECT_THROW(into.combine_part(0, 3, head.view()), ProtocolError);
}

TEST(Tsqr, InterleavedPanelSessionsMatchSequentialCombines) {
  // Two peers stream their panels interleaved column-by-column — the
  // pipelined tree's two-child pattern.  The per-peer sessions must demux
  // and land bitwise on the sequential whole-state combines.
  constexpr std::size_t kCols = 6;
  const ops::TSQR peer_b = local_state(9, 18, kCols);
  const ops::TSQR peer_c = local_state(10, 18, kCols);

  ops::TSQR sequential = local_state(11, 18, kCols);
  ops::TSQR streamed = sequential;
  sequential.combine(peer_b);
  sequential.combine(peer_c);

  for (std::size_t lo = 0; lo < kCols; lo += 2) {
    const std::size_t hi = std::min(kCols, lo + 2);
    for (const ops::TSQR* peer : {&peer_b, &peer_c}) {
      bytes::Writer w;
      peer->save_part(lo, hi, w);
      streamed.combine_part(lo, hi, w.view());
    }
  }
  EXPECT_EQ(save_op(streamed), save_op(sequential));
}

// --- bitwise schedule sweep -------------------------------------------------

/// Benign fault plan (delays, duplicates, reorders, skew — no drops).
SimConfig benign_plan(int p, int variant) {
  SimConfig sim;
  sim.seed = 90000 + 100ull * static_cast<std::uint64_t>(p) +
             static_cast<std::uint64_t>(variant);
  sim.delay_prob = 0.4;
  sim.max_extra_delay_s = 1.5e-5;
  sim.duplicate_prob = 0.4;
  sim.reorder_prob = 0.4;
  sim.max_compute_skew_s = 6e-6;
  return sim;
}

/// Runs `exchange` on every rank (states pre-accumulated — the exchange
/// is the subject) and expects every rank's final bytes to equal the
/// binomial oracle's.
template <typename Exchange>
void expect_bitwise(int p, std::size_t rows_per_rank, std::size_t cols,
                    const SimConfig& sim, const std::string& label,
                    Exchange&& exchange) {
  const auto expected = save_op(binomial_oracle(p, rows_per_rank, cols));
  std::vector<std::vector<std::byte>> got(static_cast<std::size_t>(p));
  mprt::run(
      p,
      [&](Comm& comm) {
        ops::TSQR op = local_state(comm.rank(), rows_per_rank, cols);
        exchange(comm, op);
        got[static_cast<std::size_t>(comm.rank())] = save_op(op);
      },
      mprt::CostModel{}, sim);
  for (int r = 0; r < p; ++r) {
    EXPECT_EQ(got[static_cast<std::size_t>(r)], expected)
        << label << " p=" << p << " rank " << r
        << " diverged from the binomial-fold oracle";
  }
}

TEST(TsqrSchedules, EveryScheduleBitIdenticalAcrossMachineSizes) {
  constexpr std::size_t kCols = 5;
  const Schedule schedules[] = {Schedule::kTwoMessage, Schedule::kButterfly,
                                Schedule::kRabenseifner, Schedule::kRing,
                                Schedule::kPipelined};
  for (const int p : {2, 3, 5, 8, 13, 16}) {
    for (const bool faulted : {false, true}) {
      const SimConfig sim = faulted ? benign_plan(p, 1) : SimConfig{};
      // All five schedule names: the dispatch must route every one of
      // them to the order-preserving path for a noncommutative operator.
      for (const Schedule sched : schedules) {
        expect_bitwise(p, 9, kCols, sim,
                       std::string("schedule=") +
                           std::to_string(static_cast<int>(sched)) +
                           (faulted ? " faulted" : ""),
                       [sched](Comm& comm, ops::TSQR& op) {
                         rs::detail::state_allreduce_with_schedule(
                             comm, op, ops::TSQR(op.cols()), sched,
                             /*segment_bytes=*/24, /*commutative=*/false);
                       });
      }
      // The auto dispatch (env-driven planning path).
      expect_bitwise(p, 9, kCols, sim, faulted ? "auto faulted" : "auto",
                     [](Comm& comm, ops::TSQR& op) {
                       rs::detail::state_allreduce(comm, op,
                                                   ops::TSQR(op.cols()));
                     });
    }
  }
}

TEST(TsqrSchedules, PipelinedSegmentSizesBitIdentical) {
  // The streamed column-panel merge must land on the same bits whatever
  // the segment size carves the panels into — single columns, odd panel
  // groups, or the whole state in one message.
  constexpr std::size_t kCols = 6;
  for (const int p : {2, 5, 8}) {
    for (const std::size_t segment_bytes : {std::size_t{8}, std::size_t{24},
                                            std::size_t{56}, std::size_t{4096}}) {
      expect_bitwise(p, 11, kCols, SimConfig{},
                     "pipelined seg=" + std::to_string(segment_bytes),
                     [segment_bytes](Comm& comm, ops::TSQR& op) {
                       rs::detail::state_allreduce_pipelined(comm, op,
                                                             segment_bytes);
                     });
      expect_bitwise(p, 11, kCols, benign_plan(p, 2),
                     "pipelined faulted seg=" + std::to_string(segment_bytes),
                     [segment_bytes](Comm& comm, ops::TSQR& op) {
                       rs::detail::state_allreduce_pipelined(comm, op,
                                                             segment_bytes);
                     });
    }
  }
}

TEST(TsqrSchedules, AsyncMatchesBinomialOracle) {
  constexpr std::size_t kCols = 4;
  for (const int p : {2, 6, 11}) {
    const auto expected = rs::red_result(ambient_oracle(p, 8, kCols));
    std::vector<ops::TsqrResult> got(static_cast<std::size_t>(p));
    mprt::run(p, [&](Comm& comm) {
      std::vector<std::vector<double>> rows;
      for (std::size_t i = 0; i < 8; ++i) {
        rows.push_back(make_row(comm.rank(), i, kCols));
      }
      auto future = rs::reduce_async(comm, rows, ops::TSQR(kCols));
      got[static_cast<std::size_t>(comm.rank())] = future.get();
    });
    for (int r = 0; r < p; ++r) {
      EXPECT_EQ(got[static_cast<std::size_t>(r)], expected)
          << "async p=" << p << " rank " << r;
    }
  }
}

// --- numerical oracle -------------------------------------------------------

TEST(TsqrNumerics, MatchesHouseholderWithinTolerance) {
  constexpr int kP = 4;
  struct Shape {
    std::size_t rows_per_rank;
    std::size_t cols;
  };
  for (const Shape shape : {Shape{10, 3}, Shape{25, 5}, Shape{16, 8},
                            Shape{40, 4}}) {
    const std::size_t rows = shape.rows_per_rank * kP;
    const std::size_t cols = shape.cols;
    const double tol = 100.0 * std::numeric_limits<double>::epsilon() *
                       static_cast<double>(cols);

    // The full stacked matrix A, rank-major — the global row order the
    // reduction observes.
    std::vector<double> a;
    a.reserve(rows * cols);
    for (int r = 0; r < kP; ++r) {
      for (std::size_t i = 0; i < shape.rows_per_rank; ++i) {
        const auto row = make_row(r, i, cols);
        a.insert(a.end(), row.begin(), row.end());
      }
    }

    const ops::TsqrResult reduced =
        rs::red_result(binomial_oracle(kP, shape.rows_per_rank, cols));
    const std::vector<double> r_dense = reduced.dense();

    // R vs the serial Householder reference, entry-wise.
    const qr::QrFactors ref = qr::householder_qr(rows, cols, a);
    double max_diff = 0.0;
    double max_mag = 0.0;
    for (std::size_t i = 0; i < cols; ++i) {
      for (std::size_t j = 0; j < cols; ++j) {
        max_diff = std::max(
            max_diff, std::fabs(r_dense[i * cols + j] - ref.r_entry(i, j)));
        max_mag = std::max(max_mag, std::fabs(ref.r_entry(i, j)));
      }
    }
    EXPECT_LE(max_diff, tol * std::max(1.0, max_mag))
        << "R drift, shape " << rows << "x" << cols;

    // Q manufactured from the reduced R: orthonormal and reconstructing.
    const std::vector<double> q = qr::solve_q(rows, cols, a, r_dense);
    const qr::QrFactors assembled{rows, cols, q, r_dense};
    EXPECT_LE(qr::orthogonality_error(assembled), tol)
        << "orthogonality, shape " << rows << "x" << cols;
    EXPECT_LE(qr::relative_residual(rows, cols, a, q, r_dense), tol)
        << "residual, shape " << rows << "x" << cols;
  }
}

TEST(TsqrNumerics, DistributedBitsEqualOracleBitsThenPassTheGate) {
  // End-to-end: the production reduce at p=6 produces the oracle's exact
  // bytes, and those bytes pass the numerical gate — the same pairing
  // micro_tsqr checks in CI.
  constexpr int kP = 6;
  constexpr std::size_t kRowsPerRank = 20;
  constexpr std::size_t kCols = 5;
  const auto oracle = ambient_oracle(kP, kRowsPerRank, kCols);
  std::vector<std::vector<std::byte>> got(kP);
  mprt::run(kP, [&](Comm& comm) {
    std::vector<std::vector<double>> rows;
    for (std::size_t i = 0; i < kRowsPerRank; ++i) {
      rows.push_back(make_row(comm.rank(), i, kCols));
    }
    const ops::TSQR state = rs::reduce_state(comm, rows, ops::TSQR(kCols));
    got[static_cast<std::size_t>(comm.rank())] = save_op(state);
  });
  for (int r = 0; r < kP; ++r) {
    EXPECT_EQ(got[static_cast<std::size_t>(r)], save_op(oracle))
        << "rank " << r;
  }

  std::vector<double> a;
  for (int r = 0; r < kP; ++r) {
    for (std::size_t i = 0; i < kRowsPerRank; ++i) {
      const auto row = make_row(r, i, kCols);
      a.insert(a.end(), row.begin(), row.end());
    }
  }
  const std::vector<double> r_dense = oracle.gen().dense();
  const std::vector<double> q =
      qr::solve_q(kP * kRowsPerRank, kCols, a, r_dense);
  const double tol = 100.0 * std::numeric_limits<double>::epsilon() *
                     static_cast<double>(kCols);
  EXPECT_LE(qr::relative_residual(kP * kRowsPerRank, kCols, a, q, r_dense),
            tol);
}

// --- svc windows ------------------------------------------------------------

TEST(TsqrWindows, NotInvertibleSoWindowsTakeTheTwoStackPath) {
  EXPECT_FALSE(svc::WindowedStream<ops::TSQR>::kInvertible);
  EXPECT_FALSE(rs::InvertibleOp<ops::TSQR>);
}

TEST(TsqrWindows, TumblingWindowsReproduceTheLeftFoldBitwise) {
  // Tumbling windows combine epoch states left-to-right into one running
  // aggregate — for TSQR that is exactly the serial left fold of the
  // epochs' merged states, bitwise.
  constexpr int kP = 2;
  constexpr std::size_t kCols = 4;
  constexpr std::size_t kEpochs = 6;
  constexpr std::size_t kWindow = 3;

  // Expected: per-epoch cross-rank merges (binomial fold at p=2 == the
  // single ordered combine), then the left fold of each window's epochs.
  std::vector<ops::TSQR> epoch_states;
  for (std::size_t e = 0; e < kEpochs; ++e) {
    std::vector<ops::TSQR> per_rank;
    for (int r = 0; r < kP; ++r) {
      per_rank.push_back(local_state(r + static_cast<int>(e) * kP, 7, kCols));
    }
    epoch_states.push_back(verify::binomial_fold(std::move(per_rank)));
  }
  std::vector<std::vector<std::byte>> expected_windows;
  for (std::size_t w = 0; w + kWindow <= kEpochs; w += kWindow) {
    ops::TSQR agg(kCols);
    for (std::size_t e = w; e < w + kWindow; ++e) {
      agg.combine(epoch_states[e]);
    }
    expected_windows.push_back(save_op(agg));
  }

  std::vector<std::vector<std::vector<std::byte>>> emitted(kP);
  mprt::run(kP, [&](Comm& comm) {
    svc::WindowedStream<ops::TSQR> stream(
        comm, ops::TSQR(kCols), svc::WindowConfig{kWindow, 0, true});
    EXPECT_FALSE(stream.uses_inversion());
    for (std::size_t e = 0; e < kEpochs; ++e) {
      auto out = stream.push_state(
          local_state(comm.rank() + static_cast<int>(e) * kP, 7, kCols));
      if (out.has_value()) {
        // Re-pack the emitted TsqrResult as state bytes for comparison.
        ops::TSQR as_state(kCols);
        bytes::Writer w;
        w.put_vector(out->r);
        bytes::Reader rd(w.view());
        as_state.load(rd);
        emitted[static_cast<std::size_t>(comm.rank())].push_back(
            save_op(as_state));
      }
    }
    EXPECT_EQ(stream.windows_emitted(), expected_windows.size());
  });
  for (int r = 0; r < kP; ++r) {
    EXPECT_EQ(emitted[static_cast<std::size_t>(r)], expected_windows)
        << "rank " << r;
  }
}

TEST(TsqrWindows, SlidingTwoStackWindowsStayNumericallyConsistent) {
  // Sliding windows re-associate the window fold (the two-stack flip
  // builds suffix aggregates), so the bits legitimately differ from the
  // left fold — but every emitted R must still agree numerically.
  constexpr int kP = 2;
  constexpr std::size_t kCols = 3;
  constexpr std::size_t kEpochs = 7;
  constexpr std::size_t kWindow = 3;

  std::vector<ops::TSQR> epoch_states;
  for (std::size_t e = 0; e < kEpochs; ++e) {
    std::vector<ops::TSQR> per_rank;
    for (int r = 0; r < kP; ++r) {
      per_rank.push_back(local_state(r + static_cast<int>(e) * kP, 6, kCols));
    }
    epoch_states.push_back(verify::binomial_fold(std::move(per_rank)));
  }

  std::vector<std::vector<ops::TsqrResult>> emitted(kP);
  mprt::run(kP, [&](Comm& comm) {
    svc::WindowedStream<ops::TSQR> stream(
        comm, ops::TSQR(kCols), svc::WindowConfig{kWindow, 1, true});
    for (std::size_t e = 0; e < kEpochs; ++e) {
      auto out = stream.push_state(
          local_state(comm.rank() + static_cast<int>(e) * kP, 6, kCols));
      if (out.has_value()) {
        emitted[static_cast<std::size_t>(comm.rank())].push_back(*out);
      }
    }
  });

  ASSERT_EQ(emitted[0].size(), kEpochs - kWindow + 1);
  EXPECT_EQ(emitted[0].size(), emitted[1].size());
  for (std::size_t w = 0; w < emitted[0].size(); ++w) {
    ops::TSQR reference(kCols);
    for (std::size_t e = w; e < w + kWindow; ++e) {
      reference.combine(epoch_states[e]);
    }
    const auto expected = reference.gen();
    for (std::size_t j = 0; j < kCols; ++j) {
      for (std::size_t i = 0; i <= j; ++i) {
        EXPECT_NEAR(emitted[0][w].entry(i, j), expected.entry(i, j),
                    1e-9 * (1.0 + std::fabs(expected.entry(i, j))))
            << "window " << w << " entry (" << i << "," << j << ")";
      }
    }
  }
}

}  // namespace
