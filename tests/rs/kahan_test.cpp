// Tests for compensated summation: exactness on adversarial data where
// the naive sum loses everything, and schedule-independence in parallel.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "mprt/runtime.hpp"
#include "rs/ops/basic.hpp"
#include "rs/ops/kahan.hpp"
#include "rs/reduce.hpp"
#include "rs/serial.hpp"

namespace {

using namespace rsmpi;
namespace ops = rs::ops;

TEST(KahanSum, ClassicCancellationCase) {
  // 1 + 1e100 + 1 - 1e100 = 2; the naive left fold returns 0.
  const std::vector<double> v = {1.0, 1e100, 1.0, -1e100};
  EXPECT_EQ(rs::serial::reduce(v, ops::Sum<double>{}), 0.0);
  EXPECT_EQ(rs::serial::reduce(v, ops::KahanSum{}), 2.0);
}

TEST(KahanSum, ManySmallOntoLarge) {
  // 1e16 + 1.0 x 10000: naive drops every unit (1.0 < ulp of 1e16 is
  // false — ulp(1e16) = 2, so each add rounds down); compensation keeps
  // them.
  std::vector<double> v = {1e16};
  for (int i = 0; i < 10000; ++i) v.push_back(1.0);
  const double naive = rs::serial::reduce(v, ops::Sum<double>{});
  const double kahan = rs::serial::reduce(v, ops::KahanSum{});
  EXPECT_EQ(kahan, 1e16 + 10000.0);
  EXPECT_LT(std::abs(kahan - (1e16 + 10000.0)),
            std::abs(naive - (1e16 + 10000.0)) + 1.0);
}

TEST(KahanSum, CombineKeepsCompensation) {
  ops::KahanSum a, b;
  a.accum(1e100);
  a.accum(1.0);
  b.accum(-1e100);
  b.accum(1.0);
  a.combine(b);
  EXPECT_EQ(a.gen(), 2.0);
}

TEST(KahanSum, ParallelEqualsSerialWithinUlps) {
  std::mt19937 rng(314);
  std::uniform_real_distribution<double> mag(0.0, 1.0);
  std::vector<double> data(4096);
  for (std::size_t i = 0; i < data.size(); ++i) {
    // Wildly varying magnitudes, alternating signs: high condition number.
    const double scale = std::pow(10.0, static_cast<double>(i % 24));
    data[i] = (i % 2 == 0 ? 1.0 : -1.0) * mag(rng) * scale;
  }
  const double want = rs::serial::reduce(data, ops::KahanSum{});
  for (const int p : {2, 3, 8}) {
    mprt::run(p, [&](mprt::Comm& comm) {
      const std::size_t chunk = data.size() / comm.size();
      const std::size_t lo = chunk * comm.rank();
      const std::size_t hi =
          comm.rank() == comm.size() - 1 ? data.size() : lo + chunk;
      const std::vector<double> mine(data.begin() + static_cast<long>(lo),
                                     data.begin() + static_cast<long>(hi));
      const double got = rs::reduce(comm, mine, ops::KahanSum{});
      // Different tree, same compensated result to near-ulp accuracy.
      EXPECT_NEAR(got, want, std::abs(want) * 1e-15 + 1e-7) << "p=" << p;
    });
  }
}

}  // namespace
