// Failure-injection tests: errors thrown inside operator callbacks or
// caused by malformed states must surface to the caller of mprt::run on
// every rank count, never deadlock the machine, and carry the original
// type.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "mprt/runtime.hpp"
#include "rs/ops/ops.hpp"
#include "rs/reduce.hpp"
#include "rs/scan.hpp"

namespace {

using namespace rsmpi;
namespace ops = rs::ops;

/// Operator whose callbacks throw on demand.
struct FaultyOp {
  static constexpr bool commutative = false;

  int fail_on_accum_value = -1;
  bool fail_on_combine = false;
  long sum = 0;

  void accum(const int& x) {
    if (x == fail_on_accum_value) {
      throw std::domain_error("accum rejected value");
    }
    sum += x;
  }
  void combine(const FaultyOp& o) {
    if (fail_on_combine || o.fail_on_combine) {
      throw std::domain_error("combine failed");
    }
    sum += o.sum;
  }
  [[nodiscard]] long gen() const { return sum; }
};

class FailureSweep : public ::testing::TestWithParam<int> {};

TEST_P(FailureSweep, AccumThrowPropagatesFromAnyRank) {
  const int p = GetParam();
  for (int failing_rank = 0; failing_rank < p; ++failing_rank) {
    EXPECT_THROW(
        mprt::run(p,
                  [&](mprt::Comm& comm) {
                    FaultyOp op;
                    op.fail_on_accum_value =
                        comm.rank() == failing_rank ? 3 : -1;
                    const std::vector<int> mine = {1, 2, 3, 4};
                    (void)rs::reduce(comm, mine, op);
                  }),
        std::domain_error)
        << "p=" << p << " failing_rank=" << failing_rank;
  }
}

TEST_P(FailureSweep, CombineThrowPropagates) {
  const int p = GetParam();
  if (p < 2) GTEST_SKIP() << "combine needs two ranks";
  EXPECT_THROW(mprt::run(p,
                         [&](mprt::Comm& comm) {
                           FaultyOp op;
                           op.fail_on_combine = comm.rank() == 0;
                           const std::vector<int> mine = {1};
                           (void)rs::reduce(comm, mine, op);
                         }),
               std::domain_error);
}

TEST_P(FailureSweep, ScanFailurePropagates) {
  const int p = GetParam();
  EXPECT_THROW(
      mprt::run(p,
                [&](mprt::Comm& comm) {
                  // Counts rejects out-of-range buckets; the last rank
                  // feeds it one.
                  std::vector<int> mine = {0, 1, 0};
                  if (comm.rank() == comm.size() - 1) mine.push_back(99);
                  (void)rs::scan(comm, mine, ops::Counts(2));
                }),
      ArgumentError);
}

INSTANTIATE_TEST_SUITE_P(RankCounts, FailureSweep,
                         ::testing::Values(1, 2, 3, 4, 8));

TEST(Failure, MismatchedPrototypeAcrossRanksIsProtocolError) {
  // Rank 1 constructs MinK with a different k: state payloads disagree and
  // deserialization must fail loudly, not corrupt memory.
  EXPECT_THROW(mprt::run(2,
                         [](mprt::Comm& comm) {
                           const std::vector<int> mine = {1, 2, 3};
                           const std::size_t k = comm.rank() == 0 ? 3 : 5;
                           (void)rs::reduce(comm, mine,
                                            ops::MinK<int>(k));
                         }),
               ProtocolError);
}

TEST(Failure, MismatchedCountsWidthIsDetected) {
  EXPECT_THROW(mprt::run(2,
                         [](mprt::Comm& comm) {
                           const std::vector<int> mine = {0};
                           const std::size_t width =
                               comm.rank() == 0 ? 4 : 6;
                           (void)rs::reduce(comm, mine, ops::Counts(width));
                         }),
               ProtocolError);
}

}  // namespace
