// Tests for the extension operators: Segmented, Fuse, and MaxSubarray —
// serial semantics first, then parallel-equals-serial over rank sweeps.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "mprt/runtime.hpp"
#include "rs/ops/ops.hpp"
#include "rs/reduce.hpp"
#include "rs/scan.hpp"
#include "rs/serial.hpp"

namespace {

using namespace rsmpi;
namespace ops = rs::ops;
namespace serial = rs::serial;

template <typename T>
std::vector<T> my_block(const std::vector<T>& all, int p, int rank) {
  const std::size_t n = all.size();
  const std::size_t base = n / static_cast<std::size_t>(p);
  const std::size_t extra = n % static_cast<std::size_t>(p);
  const std::size_t lo = base * static_cast<std::size_t>(rank) +
                         std::min<std::size_t>(rank, extra);
  const std::size_t len = base + (static_cast<std::size_t>(rank) < extra);
  return {all.begin() + static_cast<std::ptrdiff_t>(lo),
          all.begin() + static_cast<std::ptrdiff_t>(lo + len)};
}

// -- Segmented ----------------------------------------------------------------

std::vector<ops::Seg<long>> make_segments(
    const std::vector<long>& values, const std::vector<std::size_t>& starts) {
  std::vector<ops::Seg<long>> out;
  for (std::size_t i = 0; i < values.size(); ++i) {
    out.push_back({values[i],
                   std::find(starts.begin(), starts.end(), i) != starts.end()});
  }
  return out;
}

TEST(Segmented, ScanRestartsAtBoundaries) {
  // Segments: [1 2 3 | 4 5 | 6]; segmented +-scan = 1 3 6 | 4 9 | 6.
  const auto data = make_segments({1, 2, 3, 4, 5, 6}, {0, 3, 5});
  const auto got =
      serial::scan(data, ops::segmented<long>(ops::Sum<long>{}));
  EXPECT_EQ(got, (std::vector<long>{1, 3, 6, 4, 9, 6}));
}

TEST(Segmented, ReductionYieldsLastSegment) {
  const auto data = make_segments({1, 2, 3, 4, 5, 6}, {0, 3, 5});
  EXPECT_EQ(serial::reduce(data, ops::segmented<long>(ops::Sum<long>{})), 6);
}

TEST(Segmented, FirstElementNeedNotBeFlagged) {
  // An unflagged opening run continues the (empty) initial segment.
  const auto data = make_segments({10, 20}, {});
  const auto got =
      serial::scan(data, ops::segmented<long>(ops::Sum<long>{}));
  EXPECT_EQ(got, (std::vector<long>{10, 30}));
}

TEST(Segmented, WorksWithMinUnderneath) {
  const auto data = make_segments({5, 3, 7, 9, 2, 8}, {0, 3});
  const auto got = serial::scan(data, ops::segmented<long>(ops::Min<long>{}));
  EXPECT_EQ(got, (std::vector<long>{5, 3, 3, 9, 2, 2}));
}

TEST(Segmented, CombineAcrossBoundaryBlocks) {
  using SegOp = ops::Segmented<ops::Sum<long>, long>;
  // Left block ends mid-segment; right block opens a new segment later.
  auto left = serial::reduce_state(make_segments({1, 2}, {0}),
                                   ops::segmented<long>(ops::Sum<long>{}));
  auto right = serial::reduce_state(make_segments({3, 4, 5}, {1}),
                                    ops::segmented<long>(ops::Sum<long>{}));
  left.combine(right);
  // Segments: [1 2 3 | 4 5]; last segment sums to 9.
  EXPECT_EQ(static_cast<const SegOp&>(left).red_gen(), 9);

  // Right block without boundary extends the left run.
  auto l2 = serial::reduce_state(make_segments({1, 2}, {0}),
                                 ops::segmented<long>(ops::Sum<long>{}));
  auto r2 = serial::reduce_state(make_segments({3, 4}, {}),
                                 ops::segmented<long>(ops::Sum<long>{}));
  l2.combine(r2);
  EXPECT_EQ(l2.red_gen(), 10);
}

class SegmentedSweep : public ::testing::TestWithParam<int> {};

TEST_P(SegmentedSweep, ParallelScanMatchesSerial) {
  const int p = GetParam();
  std::mt19937 rng(123);
  std::uniform_int_distribution<long> vdist(-20, 20);
  std::bernoulli_distribution bdist(0.15);
  std::vector<ops::Seg<long>> data(400);
  for (auto& e : data) e = {vdist(rng), bdist(rng)};

  const auto op = ops::segmented<long>(ops::Sum<long>{});
  const auto want = serial::scan(data, op);
  mprt::run(p, [&](mprt::Comm& comm) {
    const auto mine = my_block(data, comm.size(), comm.rank());
    EXPECT_EQ(rs::scan(comm, mine, op),
              my_block(want, comm.size(), comm.rank()));
  });
}

TEST_P(SegmentedSweep, ParallelReduceMatchesSerial) {
  const int p = GetParam();
  std::mt19937 rng(321);
  std::uniform_int_distribution<long> vdist(-9, 9);
  std::bernoulli_distribution bdist(0.1);
  std::vector<ops::Seg<long>> data(300);
  for (auto& e : data) e = {vdist(rng), bdist(rng)};

  const auto op = ops::segmented<long>(ops::Sum<long>{});
  const auto want = serial::reduce(data, op);
  mprt::run(p, [&](mprt::Comm& comm) {
    const auto mine = my_block(data, comm.size(), comm.rank());
    EXPECT_EQ(rs::reduce(comm, mine, op), want);
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, SegmentedSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 16));

// -- Fuse ---------------------------------------------------------------------

TEST(Fuse, RunsBothReductionsInOnePass) {
  const std::vector<int> v = {4, -1, 7, 2};
  const auto [mn, mx] =
      serial::reduce(v, ops::fuse(ops::Min<int>{}, ops::Max<int>{}));
  EXPECT_EQ(mn, -1);
  EXPECT_EQ(mx, 7);
}

TEST(Fuse, MixedTrivialAndHeapStates) {
  // Sum (trivially copyable) fused with MinK (save/load).
  const std::vector<int> v = {5, 1, 8, 3};
  const auto [sum, mins] =
      serial::reduce(v, ops::fuse(ops::Sum<long>{}, ops::MinK<int>(2)));
  EXPECT_EQ(sum, 17);
  EXPECT_EQ(mins, (std::vector<int>{1, 3}));
}

TEST(Fuse, CommutativityIsConjunction) {
  using FMinMax = ops::Fuse<ops::Min<int>, ops::Max<int>>;
  using FMinSorted = ops::Fuse<ops::Min<int>, ops::Sorted<int>>;
  EXPECT_TRUE(rs::op_commutative<FMinMax>());
  EXPECT_FALSE(rs::op_commutative<FMinSorted>());
}

TEST(Fuse, ForwardsPrePostHooks) {
  // Sorted relies on pre_accum; fused with Sum it must still see it.
  const std::vector<int> v = {1, 2, 5, 9};
  const auto [sum, ok] =
      serial::reduce(v, ops::fuse(ops::Sum<long>{}, ops::Sorted<int>{}));
  EXPECT_EQ(sum, 17);
  EXPECT_TRUE(ok);
}

class FuseSweep : public ::testing::TestWithParam<int> {};

TEST_P(FuseSweep, ParallelMatchesSerialWithHeapState) {
  const int p = GetParam();
  std::mt19937 rng(55);
  std::uniform_int_distribution<int> dist(-1000, 1000);
  std::vector<int> data(500);
  for (auto& x : data) x = dist(rng);

  const auto op = ops::fuse(ops::Sum<long>{}, ops::MinK<int>(5));
  const auto want = serial::reduce(data, op);
  mprt::run(p, [&](mprt::Comm& comm) {
    const auto mine = my_block(data, comm.size(), comm.rank());
    const auto got = rs::reduce(comm, mine, op);
    EXPECT_EQ(got.first, want.first);
    EXPECT_EQ(got.second, want.second);
  });
}

TEST_P(FuseSweep, NonCommutativeFusePreservesOrder) {
  const int p = GetParam();
  const std::string text = "fusion keeps order";
  std::vector<char> data(text.begin(), text.end());
  const auto op = ops::fuse(ops::Concat{}, ops::Sorted<char>{});
  mprt::run(p, [&](mprt::Comm& comm) {
    const auto mine = my_block(data, comm.size(), comm.rank());
    const auto got = rs::reduce(comm, mine, op);
    EXPECT_EQ(got.first, text);
    EXPECT_FALSE(got.second);  // the text is not character-sorted
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, FuseSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 16));

// -- MaxSubarray --------------------------------------------------------------

TEST(MaxSubarray, ClassicExample) {
  const std::vector<long> v = {-2, 1, -3, 4, -1, 2, 1, -5, 4};
  EXPECT_EQ(serial::reduce(v, ops::MaxSubarray<long>{}), 6);  // [4,-1,2,1]
}

TEST(MaxSubarray, AllNegativePicksLargestElement) {
  const std::vector<long> v = {-8, -3, -6, -2, -5};
  EXPECT_EQ(serial::reduce(v, ops::MaxSubarray<long>{}), -2);
}

TEST(MaxSubarray, SingleAndEmpty) {
  EXPECT_EQ(serial::reduce(std::vector<long>{7}, ops::MaxSubarray<long>{}), 7);
  EXPECT_EQ(serial::reduce(std::vector<long>{}, ops::MaxSubarray<long>{}), 0);
}

TEST(MaxSubarray, CombineMatchesWholeArrayKadane) {
  std::mt19937 rng(77);
  std::uniform_int_distribution<long> dist(-10, 10);
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<long> v(100);
    for (auto& x : v) x = dist(rng);

    // Kadane oracle.
    long best = v[0], run = v[0];
    for (std::size_t i = 1; i < v.size(); ++i) {
      run = std::max(v[i], run + v[i]);
      best = std::max(best, run);
    }

    // Split at a random point and combine the halves.
    const std::size_t cut = 1 + rng() % (v.size() - 1);
    auto left = serial::reduce_state(
        std::vector<long>(v.begin(), v.begin() + static_cast<long>(cut)),
        ops::MaxSubarray<long>{});
    const auto right = serial::reduce_state(
        std::vector<long>(v.begin() + static_cast<long>(cut), v.end()),
        ops::MaxSubarray<long>{});
    left.combine(right);
    EXPECT_EQ(left.gen(), best) << "trial " << trial << " cut " << cut;
  }
}

class MaxSubarraySweep : public ::testing::TestWithParam<int> {};

TEST_P(MaxSubarraySweep, ParallelMatchesSerial) {
  const int p = GetParam();
  std::mt19937 rng(88);
  std::uniform_int_distribution<long> dist(-50, 50);
  std::vector<long> data(600);
  for (auto& x : data) x = dist(rng);
  const long want = serial::reduce(data, ops::MaxSubarray<long>{});
  mprt::run(p, [&](mprt::Comm& comm) {
    const auto mine = my_block(data, comm.size(), comm.rank());
    EXPECT_EQ(rs::reduce(comm, mine, ops::MaxSubarray<long>{}), want);
  });
}

TEST_P(MaxSubarraySweep, ScanGivesRunningBest) {
  const int p = GetParam();
  std::mt19937 rng(89);
  std::uniform_int_distribution<long> dist(-10, 10);
  std::vector<long> data(200);
  for (auto& x : data) x = dist(rng);
  const auto want = serial::scan(data, ops::MaxSubarray<long>{});
  mprt::run(p, [&](mprt::Comm& comm) {
    const auto mine = my_block(data, comm.size(), comm.rank());
    EXPECT_EQ(rs::scan(comm, mine, ops::MaxSubarray<long>{}),
              my_block(want, comm.size(), comm.rank()));
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, MaxSubarraySweep,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 16));

}  // namespace
