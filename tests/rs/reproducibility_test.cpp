// Bitwise reproducibility of floating-point operator states (ISSUE 9
// satellite): with RSMPI_LOCAL_CHUNKED=1 pinning the canonical chunked
// local fold, the same (extent, RSMPI_LOCAL_GRAIN, schedule) must yield
// byte-identical reduction states
//
//   * across repeated runs (10x — no hidden dependence on wall time,
//     allocation addresses, or scheduler noise), and
//   * across pool widths RSMPI_LOCAL_THREADS in {1, 2, 8} — chunk
//     boundaries and the ascending-chunk merge are functions of
//     (extent, grain) only, never of which worker ran which chunk.
//
// Every floating-point-state operator in the library is covered: MeanVar
// (Chan combine), KahanSum (compensated carry), and TSQR (Givens R-factor
// merge, noncommutative).  States are compared as serialized bytes, not
// through operator==, so -0.0/NaN coincidences cannot mask a drift.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdlib>
#include <string>
#include <vector>

#include "mprt/runtime.hpp"
#include "rs/ops/ops.hpp"
#include "rs/reduce.hpp"
#include "util/bytes.hpp"

namespace {

using namespace rsmpi;
namespace ops = rs::ops;
using mprt::Comm;
using rs::save_op;

constexpr int kRanks = 4;
constexpr std::size_t kExtent = 300;  // per rank; grain 97 -> 4 uneven chunks

/// Scoped environment variable (see segmented_schedule_test.cpp): set on
/// construction, unset on destruction.  No runs may be in flight while
/// the value changes — rank threads read the environment during dispatch.
class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value) : name_(name) {
    ::setenv(name, value, /*overwrite=*/1);
  }
  ~EnvGuard() { ::unsetenv(name_); }
  EnvGuard(const EnvGuard&) = delete;
  EnvGuard& operator=(const EnvGuard&) = delete;

 private:
  const char* name_;
};

/// Deterministic, platform-exact double: a small rational whose division
/// rounds the same way under IEEE 754 everywhere.
double sample(int rank, std::size_t i) {
  return static_cast<double>((static_cast<int>(i) * 31 + rank * 17) % 1001) /
             7.0 -
         50.0;
}

/// One production reduction (pool accumulate + state exchange) under the
/// ambient env knobs; returns every rank's serialized reduced state.
/// Ranks may legitimately disagree with each other under pairing-order
/// schedules (the butterfly rounds differently per rank) — the
/// reproducibility claim is that the *whole per-rank vector* is identical
/// across runs and pool widths, not that ranks agree.
template <typename Op, typename In>
std::vector<std::vector<std::byte>> run_once(
    const std::vector<std::vector<In>>& local, const Op& prototype) {
  std::vector<std::vector<std::byte>> bytes(kRanks);
  mprt::run(kRanks, [&](Comm& comm) {
    const auto r = static_cast<std::size_t>(comm.rank());
    Op state = rs::reduce_state(comm, local[r], prototype);
    bytes[r] = save_op(state);
  });
  return bytes;
}

/// The reproducibility matrix: byte-identity across 10 repeats at one
/// width and across the width sweep, at fixed grain and schedule.
template <typename Op, typename In>
void expect_reproducible(const std::vector<std::vector<In>>& local,
                         const Op& prototype) {
  EnvGuard chunked("RSMPI_LOCAL_CHUNKED", "1");
  EnvGuard grain("RSMPI_LOCAL_GRAIN", "97");
  std::vector<std::vector<std::byte>> reference;
  {
    EnvGuard threads("RSMPI_LOCAL_THREADS", "1");
    reference = run_once(local, prototype);
  }
  for (const char* width : {"1", "2", "8"}) {
    EnvGuard threads("RSMPI_LOCAL_THREADS", width);
    const int repeats = std::string(width) == "2" ? 10 : 3;
    for (int rep = 0; rep < repeats; ++rep) {
      EXPECT_EQ(run_once(local, prototype), reference)
          << "width " << width << " repeat " << rep
          << " diverged from the width-1 reference";
    }
  }
}

std::vector<std::vector<double>> scalar_inputs() {
  std::vector<std::vector<double>> local(kRanks);
  for (int r = 0; r < kRanks; ++r) {
    for (std::size_t i = 0; i < kExtent; ++i) {
      local[static_cast<std::size_t>(r)].push_back(sample(r, i));
    }
  }
  return local;
}

TEST(Reproducibility, MeanVarAcrossRunsAndWidths) {
  expect_reproducible(scalar_inputs(), ops::MeanVar{});
}

TEST(Reproducibility, KahanSumAcrossRunsAndWidths) {
  expect_reproducible(scalar_inputs(), ops::KahanSum{});
}

// Same claim under a pinned segmented schedule: the env override must not
// reintroduce width dependence (the exchange never sees the pool, but the
// knob plumbing is worth pinning once).
TEST(Reproducibility, MeanVarUnderForcedRingSchedule) {
  EnvGuard sched("RSMPI_SCHEDULE", "ring");
  expect_reproducible(scalar_inputs(), ops::MeanVar{});
}

TEST(Reproducibility, TsqrAcrossRunsAndWidths) {
  constexpr std::size_t kCols = 5;
  std::vector<std::vector<std::vector<double>>> local(kRanks);
  for (int r = 0; r < kRanks; ++r) {
    for (std::size_t i = 0; i < kExtent; ++i) {
      std::vector<double> row(kCols);
      for (std::size_t c = 0; c < kCols; ++c) {
        row[c] = sample(r, i * kCols + c);
      }
      local[static_cast<std::size_t>(r)].push_back(std::move(row));
    }
  }
  expect_reproducible(local, ops::TSQR(kCols));
}

// The knob's contract at width 1: RSMPI_LOCAL_CHUNKED unset keeps the
// pre-pool serial loop bitwise (compensation never split), while =1
// switches to the canonical chunked fold — the same bits any wider pool
// produces (asserted against width 8 by the matrix tests above).
TEST(Reproducibility, ChunkedKnobMatchesPlainSerialWhenOff) {
  EnvGuard grain("RSMPI_LOCAL_GRAIN", "97");
  EnvGuard threads("RSMPI_LOCAL_THREADS", "1");
  const auto local = scalar_inputs();
  ops::KahanSum serial;
  for (const double v : local[0]) serial.accum(v);

  std::vector<std::byte> reduced;
  mprt::run(1, [&](Comm& comm) {
    ops::KahanSum state = rs::reduce_state(comm, local[0], ops::KahanSum{});
    reduced = save_op(state);
  });
  EXPECT_EQ(reduced, save_op(serial));
}

}  // namespace
