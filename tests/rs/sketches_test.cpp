// Tests for the mergeable-sketch operators.
//
// HyperLogLog and Bloom have exactly associative/commutative combines, so
// parallel must equal serial bit-for-bit.  Misra–Gries merging is order-
// sensitive (different trees give different — but all valid — summaries),
// so its parallel tests assert the sketch *guarantees* instead: heavy
// elements always surface, and reported counts are lower bounds within
// n/(k+1) of the truth.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <random>
#include <vector>

#include "mprt/runtime.hpp"
#include "rs/ops/sketches.hpp"
#include "rs/reduce.hpp"
#include "rs/serial.hpp"

namespace {

using namespace rsmpi;
namespace ops = rs::ops;

template <typename T>
std::vector<T> my_block(const std::vector<T>& all, int p, int rank) {
  const std::size_t n = all.size();
  const std::size_t base = n / static_cast<std::size_t>(p);
  const std::size_t extra = n % static_cast<std::size_t>(p);
  const std::size_t lo = base * static_cast<std::size_t>(rank) +
                         std::min<std::size_t>(rank, extra);
  const std::size_t len = base + (static_cast<std::size_t>(rank) < extra);
  return {all.begin() + static_cast<std::ptrdiff_t>(lo),
          all.begin() + static_cast<std::ptrdiff_t>(lo + len)};
}

// -- HyperLogLog ---------------------------------------------------------------

TEST(HyperLogLog, EstimatesWithinExpectedError) {
  for (const long distinct : {100L, 5000L, 100000L}) {
    std::vector<long> data;
    for (long i = 0; i < distinct; ++i) {
      data.push_back(i * 2654435761L);  // distinct values
      data.push_back(i * 2654435761L);  // each twice: duplicates ignored
    }
    const double est =
        rs::serial::reduce(data, ops::HyperLogLog<long>(12));
    // Standard error at b=12 is ~1.6%; allow 6 sigma.
    EXPECT_NEAR(est, static_cast<double>(distinct),
                static_cast<double>(distinct) * 0.10)
        << "distinct=" << distinct;
  }
}

TEST(HyperLogLog, SmallRangeIsNearlyExact) {
  std::vector<long> data = {1, 2, 3, 4, 5, 1, 2, 3};
  const double est = rs::serial::reduce(data, ops::HyperLogLog<long>(10));
  EXPECT_NEAR(est, 5.0, 0.5);
}

TEST(HyperLogLog, RejectsBadPrecision) {
  EXPECT_THROW(ops::HyperLogLog<int>(3), ArgumentError);
  EXPECT_THROW(ops::HyperLogLog<int>(17), ArgumentError);
}

class HllSweep : public ::testing::TestWithParam<int> {};

TEST_P(HllSweep, ParallelEqualsSerialExactly) {
  // max-merge is associative and commutative: any tree gives the same
  // registers, hence the identical estimate.
  const int p = GetParam();
  std::mt19937_64 rng(2718);
  std::vector<long> data(20000);
  for (auto& x : data) {
    x = static_cast<long>(rng() % 3000);  // ~3000 distinct
  }
  const double want = rs::serial::reduce(data, ops::HyperLogLog<long>(11));
  mprt::run(p, [&](mprt::Comm& comm) {
    const auto mine = my_block(data, comm.size(), comm.rank());
    const double got = rs::reduce(comm, mine, ops::HyperLogLog<long>(11));
    EXPECT_EQ(got, want);
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, HllSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 16));

// -- HeavyHitters ----------------------------------------------------------------

TEST(HeavyHitters, FindsTheHeavyElementSerially) {
  // 40% of the stream is the value 7; k = 4 guarantees anything above
  // n/5 = 20% survives.
  std::vector<int> data;
  std::mt19937 rng(31);
  for (int i = 0; i < 10000; ++i) {
    data.push_back(i % 10 < 4 ? 7 : static_cast<int>(rng() % 1000) + 100);
  }
  const auto hh = rs::serial::reduce(data, ops::HeavyHitters<int>(4));
  ASSERT_FALSE(hh.empty());
  EXPECT_EQ(hh.front().value, 7);
  // Count is a lower bound within n/(k+1).
  EXPECT_LE(hh.front().count, 4000);
  EXPECT_GE(hh.front().count, 4000 - 10000 / 5);
}

TEST(HeavyHitters, ExactWhenFewDistinctValues) {
  // With at most k distinct values, counts are exact.
  std::vector<int> data;
  for (int i = 0; i < 300; ++i) data.push_back(i % 3);
  const auto hh = rs::serial::reduce(data, ops::HeavyHitters<int>(5));
  ASSERT_EQ(hh.size(), 3u);
  for (const auto& e : hh) EXPECT_EQ(e.count, 100);
}

class HeavyHitterSweep : public ::testing::TestWithParam<int> {};

TEST_P(HeavyHitterSweep, GuaranteesHoldUnderAnyCombineTree) {
  const int p = GetParam();
  // Two heavy values (30% and 20%) in a sea of uniques.
  std::vector<int> data;
  std::mt19937 rng(41);
  constexpr int kN = 12000;
  for (int i = 0; i < kN; ++i) {
    const int r = i % 10;
    if (r < 3) {
      data.push_back(1111);
    } else if (r < 5) {
      data.push_back(2222);
    } else {
      data.push_back(10000 + i);  // unique noise
    }
  }
  std::shuffle(data.begin(), data.end(), rng);

  constexpr std::size_t kK = 9;  // threshold n/10: both heavies survive
  mprt::run(p, [&](mprt::Comm& comm) {
    const auto mine = my_block(data, comm.size(), comm.rank());
    const auto hh = rs::reduce(comm, mine, ops::HeavyHitters<int>(kK));
    ASSERT_LE(hh.size(), kK);

    long count1111 = -1, count2222 = -1;
    for (const auto& e : hh) {
      if (e.value == 1111) count1111 = e.count;
      if (e.value == 2222) count2222 = e.count;
    }
    // Both heavy values must be present with sound lower bounds.
    ASSERT_GE(count1111, 0) << "30% element missing";
    ASSERT_GE(count2222, 0) << "20% element missing";
    EXPECT_LE(count1111, kN * 3 / 10);
    EXPECT_GE(count1111, kN * 3 / 10 - kN / (static_cast<int>(kK) + 1));
    EXPECT_LE(count2222, kN * 2 / 10);
    EXPECT_GE(count2222, kN * 2 / 10 - kN / (static_cast<int>(kK) + 1));
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, HeavyHitterSweep,
                         ::testing::Values(1, 2, 3, 5, 8));

// -- BloomFilter -----------------------------------------------------------------

TEST(BloomFilter, NoFalseNegatives) {
  ops::BloomFilter<long> bf(1 << 12, 4);
  for (long x = 0; x < 500; ++x) bf.accum(x * 37);
  for (long x = 0; x < 500; ++x) {
    EXPECT_TRUE(bf.maybe_contains(x * 37)) << x;
  }
}

TEST(BloomFilter, LowFalsePositiveRateWhenSizedRight) {
  // 500 elements into 4096 bits with 4 hashes: FPR ~ 1.8%.
  ops::BloomFilter<long> bf(1 << 12, 4);
  for (long x = 0; x < 500; ++x) bf.accum(x);
  int fp = 0;
  constexpr int kProbes = 5000;
  for (long x = 1'000'000; x < 1'000'000 + kProbes; ++x) {
    if (bf.maybe_contains(x)) ++fp;
  }
  EXPECT_LT(static_cast<double>(fp) / kProbes, 0.05);
}

class BloomSweep : public ::testing::TestWithParam<int> {};

TEST_P(BloomSweep, ParallelUnionEqualsSerialExactly) {
  const int p = GetParam();
  std::vector<long> data;
  for (long i = 0; i < 4000; ++i) data.push_back(i * 7 + 1);

  const auto want =
      rs::serial::reduce(data, ops::BloomFilter<long>(1 << 13, 3));
  mprt::run(p, [&](mprt::Comm& comm) {
    const auto mine = my_block(data, comm.size(), comm.rank());
    const auto got = rs::reduce(comm, mine, ops::BloomFilter<long>(1 << 13, 3));
    // Exact equality of the bit arrays, observed through behaviour.
    EXPECT_DOUBLE_EQ(got.fill_ratio(), want.fill_ratio());
    for (long i = 0; i < 4000; i += 97) {
      EXPECT_TRUE(got.maybe_contains(i * 7 + 1));
    }
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, BloomSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 16));

TEST(BloomFilter, MismatchedSizesRejected) {
  ops::BloomFilter<int> a(128, 2), b(256, 2);
  EXPECT_THROW(a.combine(b), ProtocolError);
}

}  // namespace
