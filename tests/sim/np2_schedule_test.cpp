// Non-power-of-two rank coverage (ISSUE 4, satellite 3): every schedule
// with a fold-in/fold-out phase — butterfly allreduce, Rabenseifner
// reduce-scatter+allgather, deferred-prefix xscan — exercised at p = 3, 5,
// 6, 7, 12 both fault-free and under a benign fault plan, against the
// serial oracle.  The trailing p - 2^k ranks take a different code path in
// these schedules; power-of-two-only sweeps never execute it.
#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "coll/local_reduce.hpp"
#include "coll/rabenseifner.hpp"
#include "mprt/runtime.hpp"
#include "mprt/sim.hpp"
#include "rs/ops/basic.hpp"
#include "rs/ops/concat.hpp"
#include "rs/ops/counts.hpp"
#include "rs/ops/mink.hpp"
#include "rs/reduce.hpp"
#include "rs/scan.hpp"
#include "rs/serial.hpp"
#include "rs/state_exchange.hpp"

namespace {

using namespace rsmpi;
using mprt::Comm;
using mprt::SimConfig;
namespace ops = rs::ops;

constexpr int kNp2Ranks[] = {3, 5, 6, 7, 12};

/// A benign fault plan (no drops, no kills) seeded per (p, variant) so the
/// faulted runs differ from each other but replay identically.
SimConfig benign_plan(int p, int variant) {
  SimConfig sim;
  sim.seed = 40000 + 100ull * static_cast<std::uint64_t>(p) +
             static_cast<std::uint64_t>(variant);
  sim.delay_prob = 0.4;
  sim.max_extra_delay_s = 1.5e-5;
  sim.duplicate_prob = 0.4;
  sim.reorder_prob = 0.4;
  sim.max_compute_skew_s = 6e-6;
  return sim;
}

std::vector<int> rank_values(int rank, int n = 9) {
  std::vector<int> v(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    v[static_cast<std::size_t>(i)] = (rank * 41 + i * 13) % 97;
  }
  return v;
}

class Np2Sweep : public ::testing::TestWithParam<int> {};

TEST_P(Np2Sweep, ButterflyAllreduceMatchesOracle) {
  const int p = GetParam();
  std::vector<int> global;
  for (int r = 0; r < p; ++r) {
    const auto v = rank_values(r);
    global.insert(global.end(), v.begin(), v.end());
  }
  const auto expected_counts = rs::serial::reduce(global, ops::Counts(97));
  const auto expected_mink = rs::serial::reduce(global, ops::MinK<int>(3));

  for (const bool faulted : {false, true}) {
    mprt::run(
        p,
        [&](Comm& comm) {
          const auto mine = rank_values(comm.rank());
          // Forced butterfly: the trailing-rank fold is the path under test.
          EXPECT_EQ(rs::red_result(rs::reduce_state(comm, mine, ops::Counts(97),
                                                    /*commutative=*/true)),
                    expected_counts)
              << "p=" << p << " faulted=" << faulted;
          EXPECT_EQ(rs::red_result(rs::reduce_state(comm, mine,
                                                    ops::MinK<int>(3),
                                                    /*commutative=*/true)),
                    expected_mink)
              << "p=" << p << " faulted=" << faulted;
        },
        mprt::CostModel{}, faulted ? benign_plan(p, 0) : SimConfig{});
  }
}

TEST_P(Np2Sweep, ReduceBcastMatchesOracle) {
  const int p = GetParam();
  std::string global;
  for (int r = 0; r < p; ++r) {
    for (const int v : rank_values(r)) {
      global.push_back(static_cast<char>('a' + v % 26));
    }
  }

  for (const bool faulted : {false, true}) {
    mprt::run(
        p,
        [&](Comm& comm) {
          std::string mine;
          for (const int v : rank_values(comm.rank())) {
            mine.push_back(static_cast<char>('a' + v % 26));
          }
          // Order-preserving allreduce of the canonical non-commutative
          // operator: rank order must survive the fold.
          EXPECT_EQ(rs::reduce(comm, mine, ops::Concat{}), global)
              << "p=" << p << " faulted=" << faulted;
        },
        mprt::CostModel{}, faulted ? benign_plan(p, 1) : SimConfig{});
  }
}

TEST_P(Np2Sweep, RabenseifnerMatchesOracle) {
  const int p = GetParam();
  constexpr int kWidth = 13;  // not a multiple of any p in the sweep

  for (const bool faulted : {false, true}) {
    mprt::run(
        p,
        [&](Comm& comm) {
          std::vector<long> v(kWidth);
          for (int i = 0; i < kWidth; ++i) {
            v[static_cast<std::size_t>(i)] =
                (comm.rank() + 1L) * (i + 1L) % 53;
          }
          coll::ElementwiseOp<long, coll::Sum<long>> op;
          coll::local_allreduce_rabenseifner(comm, std::span<long>(v), op);
          for (int i = 0; i < kWidth; ++i) {
            long want = 0;
            for (int r = 0; r < comm.size(); ++r) {
              want += (r + 1L) * (i + 1L) % 53;
            }
            ASSERT_EQ(v[static_cast<std::size_t>(i)], want)
                << "p=" << p << " elt=" << i << " faulted=" << faulted;
          }
        },
        mprt::CostModel{}, faulted ? benign_plan(p, 2) : SimConfig{});
  }
}

TEST_P(Np2Sweep, DeferredPrefixXscanMatchesOracle) {
  const int p = GetParam();
  std::vector<int> global;
  for (int r = 0; r < p; ++r) {
    const auto v = rank_values(r, 7);
    global.insert(global.end(), v.begin(), v.end());
  }
  const auto incl = rs::serial::scan(global, ops::Sum<long>{});
  const auto excl = rs::serial::xscan(global, ops::Sum<long>{});

  for (const bool faulted : {false, true}) {
    std::vector<std::size_t> offsets(static_cast<std::size_t>(p) + 1, 0);
    for (int r = 0; r < p; ++r) {
      offsets[static_cast<std::size_t>(r) + 1] =
          offsets[static_cast<std::size_t>(r)] + rank_values(r, 7).size();
    }
    mprt::run(
        p,
        [&](Comm& comm) {
          const auto mine = rank_values(comm.rank(), 7);
          std::vector<long> longs(mine.begin(), mine.end());
          const auto got_incl =
              rs::scan(comm, longs, ops::Sum<long>{}, rs::ScanKind::kInclusive);
          const auto got_excl =
              rs::scan(comm, longs, ops::Sum<long>{}, rs::ScanKind::kExclusive);
          const std::size_t base =
              offsets[static_cast<std::size_t>(comm.rank())];
          for (std::size_t i = 0; i < longs.size(); ++i) {
            EXPECT_EQ(got_incl[i], incl[base + i])
                << "p=" << p << " pos=" << base + i << " faulted=" << faulted;
            EXPECT_EQ(got_excl[i], excl[base + i])
                << "p=" << p << " pos=" << base + i << " faulted=" << faulted;
          }
        },
        mprt::CostModel{}, faulted ? benign_plan(p, 3) : SimConfig{});
  }
}

INSTANTIATE_TEST_SUITE_P(NonPowerOfTwo, Np2Sweep,
                         ::testing::ValuesIn(kNp2Ranks));

}  // namespace
