// Property-based simulation suite (ISSUE 4): random operators x schedules
// x fault plans, all derived deterministically from a case seed, asserting
// bit-identical results against the serial oracle (rs/serial.hpp).
//
// Fault plans here are *benign*: delays, duplicates, physical reorders,
// and compute skew — faults the runtime must absorb without changing any
// result bit (sequence numbers restore delivery order, the per-stream
// watermark suppresses duplicates, delays only move virtual arrival
// times).  Drops and kills are not benign and live in
// fault_injection_test.cpp, where the *detection* of each fault class is
// the property.
//
// Replay workflow (docs/testing.md):
//   RSMPI_SIM_SEED=<n>       run exactly one case, the one a failure named
//   RSMPI_SIM_CASE=<string>  replay an explicit (possibly shrunk) case
//   RSMPI_SIM_SEED_BASE=<n>  start the sweep at seed n (CI matrix blocks)
//   RSMPI_SIM_EXTENDED=1     ~2000 cases instead of the default 240
//
// On failure the suite prints the replay seed, a shrunk configuration,
// and the shrunk case's RSMPI_SIM_CASE encoding.  Shrinking is purely
// syntactic over that encoding — fault knobs cleared, rank slices
// emptied, suffixes halved, in a fixed order, each probe round-tripped
// through the codec — never a re-derivation from the RNG, so the minimal
// case is identical on every platform.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "mprt/runtime.hpp"
#include "mprt/sim.hpp"
#include "rs/async.hpp"
#include "rs/ops/basic.hpp"
#include "rs/ops/concat.hpp"
#include "rs/ops/counts.hpp"
#include "rs/ops/histogram.hpp"
#include "rs/ops/maxsubarray.hpp"
#include "rs/ops/mink.hpp"
#include "rs/reduce.hpp"
#include "rs/scan.hpp"
#include "rs/serial.hpp"
#include "rs/state_exchange.hpp"
#include "util/error.hpp"
#include "verify/registry.hpp"

namespace {

using namespace rsmpi;
using mprt::Comm;
using mprt::SimConfig;
using mprt::SimRng;
namespace ops = rs::ops;

// -- Case space --------------------------------------------------------------

enum Schedule : int {
  kReduceAuto = 0,    // rs::reduce, schedule picked from commutativity
  kReduceButterfly,   // forced recursive doubling (commutative ops only)
  kReduceBcast,       // forced order-preserving reduce+bcast
  kScanIncl,          // deferred-prefix inclusive scan
  kScanExcl,          // deferred-prefix exclusive scan
  kReduceAsync,       // nonblocking reduce through the progress engine
  kScanAsync,         // nonblocking scan through the progress engine
  kXscanBoth,         // state_xscan vs state_xscan_eager vs serial prefix
  kNumSchedules
};

const char* schedule_name(int s) {
  switch (s) {
    case kReduceAuto: return "reduce-auto";
    case kReduceButterfly: return "reduce-butterfly";
    case kReduceBcast: return "reduce-bcast";
    case kScanIncl: return "scan-inclusive";
    case kScanExcl: return "scan-exclusive";
    case kReduceAsync: return "reduce-async";
    case kScanAsync: return "scan-async";
    case kXscanBoth: return "xscan-deferred+eager";
    default: return "?";
  }
}

// Mostly exact (integer-state) operators: the bit-identical-to-oracle
// claim needs combine orders to be immaterial, which floating point would
// break on the commutative (arrival-order) schedules.  The two ordered
// stress operators from the shared verify registry ride along (ISSUE 9):
// OrderedWord is exact, and TSQR — floating point AND bit-level
// noncommutative — runs only the ordered reduce schedules, compared
// against the binomial-tree bracketing oracle the ordered paths share.
enum OpKind : int {
  kSumLong = 0,
  kMinInt,
  kMaxInt,
  kCounts,
  kConcat,       // non-commutative
  kMinK,
  kHistogram,
  kMaxSubarray,  // non-commutative
  kOrderedWord,  // non-commutative (verify registry)
  kCanonSet,     // commutative, fold-order-dependent bytes (verify registry)
  kTSQR,         // non-commutative floating point (verify registry)
  kNumOpKinds
};

const char* op_name(int o) {
  switch (o) {
    case kSumLong: return "Sum<long>";
    case kMinInt: return "Min<int>";
    case kMaxInt: return "Max<int>";
    case kCounts: return "Counts(8)";
    case kConcat: return "Concat";
    case kMinK: return "MinK<int>(4)";
    case kHistogram: return "Histogram<int>";
    case kMaxSubarray: return "MaxSubarray<long>";
    case kOrderedWord: return "OrderedWord";
    case kCanonSet: return "CanonSet";
    case kTSQR: return "TSQR(4)";
    default: return "?";
  }
}

bool kind_commutative(int o) {
  return o != kConcat && o != kMaxSubarray && o != kOrderedWord && o != kTSQR;
}

/// Deterministic schedule legality remap.  The butterfly requires
/// commutativity, so noncommutative operators get the order-preserving
/// allreduce instead.  TSQR is further restricted to the ordered *reduce*
/// schedules: its combine is bit-level nonassociative, so the scan
/// bracketings have no shared oracle — each scan schedule maps to a fixed
/// reduce schedule instead.  Applied both when deriving a case and when
/// running one, so hand-edited RSMPI_SIM_CASE replays normalize the same
/// way on every platform.
int remap_schedule(int op_kind, int schedule) {
  if (!kind_commutative(op_kind) && schedule == kReduceButterfly) {
    schedule = kReduceBcast;
  }
  if (op_kind == kTSQR) {
    switch (schedule) {
      case kScanIncl: return kReduceAuto;
      case kScanExcl: return kReduceBcast;
      case kXscanBoth: return kReduceBcast;
      case kScanAsync: return kReduceAsync;
      default: return schedule;
    }
  }
  return schedule;
}

struct Case {
  std::uint64_t seed = 0;
  int p = 2;
  int op_kind = kSumLong;
  int schedule = kReduceAuto;
  SimConfig sim;
  std::vector<std::vector<int>> data;  // raw per-rank values in [0, 128)

  [[nodiscard]] std::string describe() const {
    std::ostringstream os;
    os << "p=" << p << " op=" << op_name(op_kind)
       << " schedule=" << schedule_name(schedule) << " sizes=[";
    for (std::size_t r = 0; r < data.size(); ++r) {
      os << (r == 0 ? "" : ",") << data[r].size();
    }
    os << "] plan={" << sim.describe() << "}";
    return os.str();
  }
};

/// Everything about a case — machine shape, operator, schedule, fault
/// plan, data — derives from its seed through one PRNG stream, so a seed
/// printed by a failure reconstructs the case exactly.
Case derive_case(std::uint64_t seed) {
  Case c;
  c.seed = seed;
  SimRng rng(mprt::splitmix64(seed ^ 0x5EEDF00Dull));
  static constexpr int kRanks[] = {2, 3, 5, 6, 7, 8, 12};
  c.p = kRanks[rng.below(sizeof(kRanks) / sizeof(kRanks[0]))];
  c.op_kind = static_cast<int>(rng.below(kNumOpKinds));
  c.schedule = remap_schedule(c.op_kind,
                              static_cast<int>(rng.below(kNumSchedules)));
  c.sim.seed = seed;
  if (rng.below(4) != 0) {  // 3/4 of cases run under a fault plan
    c.sim.delay_prob = 0.5 * rng.uniform();
    c.sim.max_extra_delay_s = 2e-5 * rng.uniform();
    c.sim.duplicate_prob = 0.5 * rng.uniform();
    c.sim.reorder_prob = 0.5 * rng.uniform();
    c.sim.max_compute_skew_s = 1e-5 * rng.uniform();
  }
  c.data.resize(static_cast<std::size_t>(c.p));
  for (auto& d : c.data) {
    const auto n = rng.below(17);  // includes empty local slices
    for (std::uint64_t i = 0; i < n; ++i) {
      d.push_back(static_cast<int>(rng.below(128)));
    }
  }
  return c;
}

// -- Oracle comparison -------------------------------------------------------

/// Runs one case with operator `prototype` over inputs map(raw) and
/// compares every rank's result bit-for-bit against the serial oracle.
/// Returns "" on success, a description of the first mismatch otherwise.
template <typename Op, typename MapFn>
std::string check_case(const Case& c, const Op& prototype, MapFn map) {
  using In = std::decay_t<decltype(map(0))>;
  const auto p = static_cast<std::size_t>(c.p);
  std::vector<std::vector<In>> local(p);
  std::vector<In> global;
  for (std::size_t r = 0; r < p; ++r) {
    for (const int v : c.data[r]) {
      local[r].push_back(map(v));
      global.push_back(map(v));
    }
  }

  using Red = rs::reduce_result_t<Op>;
  using ScanOut = rs::scan_result_t<Op, In>;
  std::vector<Red> red(p);
  std::vector<std::vector<ScanOut>> scans(p);
  std::vector<char> eager_mismatch(p, 0);

  try {
    mprt::run(
        c.p,
        [&](Comm& comm) {
          const auto r = static_cast<std::size_t>(comm.rank());
          switch (c.schedule) {
            case kReduceAuto:
              red[r] = rs::reduce(comm, local[r], prototype);
              break;
            case kReduceButterfly:
              red[r] = rs::red_result(
                  rs::reduce_state(comm, local[r], prototype, true));
              break;
            case kReduceBcast:
              red[r] = rs::red_result(
                  rs::reduce_state(comm, local[r], prototype, false));
              break;
            case kScanIncl:
              scans[r] = rs::scan(comm, local[r], prototype,
                                  rs::ScanKind::kInclusive);
              break;
            case kScanExcl:
              scans[r] = rs::scan(comm, local[r], prototype,
                                  rs::ScanKind::kExclusive);
              break;
            case kReduceAsync: {
              auto fut = rs::reduce_async(comm, local[r], prototype);
              red[r] = fut.get();
              break;
            }
            case kScanAsync: {
              auto fut = rs::scan_async(comm, local[r], prototype,
                                        rs::ScanKind::kInclusive);
              scans[r] = fut.get();
              break;
            }
            case kXscanBoth: {
              Op deferred = prototype;
              for (const In& x : local[r]) deferred.accum(x);
              rs::detail::state_xscan(comm, deferred, prototype);
              red[r] = rs::red_result(deferred);
              Op eager = prototype;
              for (const In& x : local[r]) eager.accum(x);
              rs::detail::state_xscan_eager(comm, eager, prototype);
              if (!(rs::red_result(eager) == red[r])) {
                eager_mismatch[r] = 1;
              }
              break;
            }
            default:
              break;
          }
        },
        mprt::CostModel{}, c.sim);
  } catch (const Error& e) {
    return std::string("run threw ") + e.what();
  }

  if (c.schedule == kScanIncl || c.schedule == kScanAsync ||
      c.schedule == kScanExcl) {
    const auto expected = c.schedule == kScanExcl
                              ? rs::serial::xscan(global, prototype)
                              : rs::serial::scan(global, prototype);
    std::size_t pos = 0;
    for (std::size_t r = 0; r < p; ++r) {
      if (scans[r].size() != local[r].size()) {
        return "rank " + std::to_string(r) + " scan length mismatch";
      }
      for (std::size_t i = 0; i < scans[r].size(); ++i, ++pos) {
        if (!(scans[r][i] == expected[pos])) {
          return "rank " + std::to_string(r) + " scan position " +
                 std::to_string(i) + " differs from serial oracle";
        }
      }
    }
    return "";
  }

  if (c.schedule == kXscanBoth) {
    std::vector<In> prefix;
    for (std::size_t r = 0; r < p; ++r) {
      if (eager_mismatch[r] != 0) {
        return "rank " + std::to_string(r) +
               " eager/deferred xscan disagreement";
      }
      const Red expected =
          rs::red_result(rs::serial::reduce_state(prefix, prototype));
      if (!(red[r] == expected)) {
        return "rank " + std::to_string(r) +
               " exclusive prefix differs from serial oracle";
      }
      prefix.insert(prefix.end(), local[r].begin(), local[r].end());
    }
    return "";
  }

  const Red expected = rs::serial::reduce(global, prototype);
  for (std::size_t r = 0; r < p; ++r) {
    if (!(red[r] == expected)) {
      return "rank " + std::to_string(r) +
             " reduction differs from serial oracle";
    }
  }
  return "";
}

/// TSQR cases are state-fed (ISSUE 9): each rank accumulates its rows
/// serially, then the case drives the state exchange directly, so the
/// expected bits are exactly verify::binomial_fold's bracketing — the
/// local worker pool's chunking never enters the comparison (production
/// rs::reduce coverage for TSQR under the pool lives in
/// tests/rs/reproducibility_test.cpp).  The forced reduce+bcast case also
/// runs the pipelined binomial tree with tiny segments, putting the
/// streamed column-panel merge under the random fault plans at machine
/// sizes the exhaustive checker (p <= 4) cannot reach.
std::string check_case_tsqr(const Case& c) {
  constexpr std::size_t kCols = 4;
  const auto p = static_cast<std::size_t>(c.p);
  std::vector<ops::TSQR> states;
  states.reserve(p);
  for (std::size_t r = 0; r < p; ++r) {
    ops::TSQR s(kCols);
    for (const int v : c.data[r]) {
      s.accum(verify::tsqr_row_from_token(v, kCols));
    }
    states.push_back(std::move(s));
  }
  const ops::TsqrResult expected =
      rs::red_result(verify::binomial_fold(states));  // folds a copy

  std::vector<ops::TsqrResult> red(p);
  std::vector<char> panel_mismatch(p, 0);
  try {
    mprt::run(
        c.p,
        [&](Comm& comm) {
          const auto r = static_cast<std::size_t>(comm.rank());
          const ops::TSQR prototype(kCols);
          ops::TSQR op = states[r];
          switch (c.schedule) {
            case kReduceAuto:
              rs::detail::state_allreduce(comm, op, prototype);
              break;
            case kReduceBcast: {
              rs::detail::state_allreduce_with_schedule(
                  comm, op, prototype, rs::detail::Schedule::kTwoMessage,
                  rs::detail::kDefaultSegmentBytes, /*commutative=*/false);
              ops::TSQR pipelined = states[r];
              rs::detail::state_allreduce_pipelined(comm, pipelined,
                                                    /*segment_bytes=*/8);
              if (!(rs::red_result(pipelined) == rs::red_result(op))) {
                panel_mismatch[r] = 1;
              }
              break;
            }
            case kReduceAsync: {
              auto state = std::make_shared<rs::detail::AsyncOpState<ops::TSQR>>(
                  states[r], prototype);
              const int tag = comm.reserve_collective_tags(2);
              auto request = coll::nb::ProgressEngine::current().launch(
                  comm,
                  std::make_unique<rs::detail::StateAllreduceOp<ops::TSQR>>(
                      comm, state, /*commutative=*/false, tag, tag + 1),
                  tag, 2);
              request.wait();
              op = state->op;
              break;
            }
            default:
              break;
          }
          red[r] = rs::red_result(op);
        },
        mprt::CostModel{}, c.sim);
  } catch (const Error& e) {
    return std::string("run threw ") + e.what();
  }

  for (std::size_t r = 0; r < p; ++r) {
    if (panel_mismatch[r] != 0) {
      return "rank " + std::to_string(r) +
             " pipelined-panel merge differs from reduce+bcast";
    }
    if (!(red[r] == expected)) {
      return "rank " + std::to_string(r) +
             " TSQR R factor differs from the binomial-tree oracle";
    }
  }
  return "";
}

std::string run_case(const Case& raw) {
  // Normalize here as well as in derive_case, so hand-edited
  // RSMPI_SIM_CASE replays land on the same legal schedule everywhere.
  Case c = raw;
  c.schedule = remap_schedule(c.op_kind, c.schedule);
  switch (c.op_kind) {
    case kSumLong:
      return check_case(c, ops::Sum<long>{},
                        [](int v) { return static_cast<long>(v); });
    case kMinInt:
      return check_case(c, ops::Min<int>{}, [](int v) { return v; });
    case kMaxInt:
      return check_case(c, ops::Max<int>{}, [](int v) { return v; });
    case kCounts:
      return check_case(c, ops::Counts(8), [](int v) { return v % 8; });
    case kConcat:
      return check_case(c, ops::Concat{}, [](int v) {
        return static_cast<char>('a' + v % 26);
      });
    case kMinK:
      return check_case(c, ops::MinK<int>(4), [](int v) { return v; });
    case kHistogram:
      return check_case(c, ops::Histogram<int>({0, 32, 64, 96, 128}),
                        [](int v) { return v; });
    case kMaxSubarray:
      return check_case(c, ops::MaxSubarray<long>{},
                        [](int v) { return static_cast<long>(v - 50); });
    case kOrderedWord:
      return check_case(c, verify::OrderedWord{}, [](int v) { return v; });
    case kCanonSet:
      // Fold into [0, 32) so rank slices overlap and the union dedups.
      return check_case(c, verify::CanonSet{}, [](int v) { return v % 32; });
    case kTSQR:
      return check_case_tsqr(c);
    default:
      return "unknown operator kind";
  }
}

// -- Case codec --------------------------------------------------------------
//
// A failing case is reported (and replayed) as an explicit encoded string,
// not as a PRNG seed: shrinking edits the case, so a shrunk case no longer
// derives from any seed.  Doubles travel as hexfloats for exact
// cross-platform round trips.
//
//   cv1;p=<n>;op=<k>;sched=<s>;sim=<seed>,<delay>,<maxdelay>,<dup>,<reorder>,<skew>;data=<r0>|<r1>|...

std::string encode_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

std::string encode_case(const Case& c) {
  std::ostringstream os;
  os << "cv1;p=" << c.p << ";op=" << c.op_kind << ";sched=" << c.schedule
     << ";sim=" << c.sim.seed << ',' << encode_double(c.sim.delay_prob) << ','
     << encode_double(c.sim.max_extra_delay_s) << ','
     << encode_double(c.sim.duplicate_prob) << ','
     << encode_double(c.sim.reorder_prob) << ','
     << encode_double(c.sim.max_compute_skew_s) << ";data=";
  for (std::size_t r = 0; r < c.data.size(); ++r) {
    if (r > 0) os << '|';
    for (std::size_t i = 0; i < c.data[r].size(); ++i) {
      if (i > 0) os << ',';
      os << c.data[r][i];
    }
  }
  return os.str();
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (;;) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

Case decode_case(const std::string& encoded) {
  const auto fields = split(encoded, ';');
  if (fields.size() != 6 || fields[0] != "cv1") {
    throw ArgumentError("decode_case: malformed case string");
  }
  const auto field = [&](std::size_t i, const char* key) {
    const std::string prefix = std::string(key) + "=";
    if (fields[i].rfind(prefix, 0) != 0) {
      throw ArgumentError(std::string("decode_case: expected '") + key +
                          "=' field");
    }
    return fields[i].substr(prefix.size());
  };
  Case c;
  c.p = std::stoi(field(1, "p"));
  c.op_kind = std::stoi(field(2, "op"));
  c.schedule = std::stoi(field(3, "sched"));
  const auto sim = split(field(4, "sim"), ',');
  if (sim.size() != 6) {
    throw ArgumentError("decode_case: expected 6 sim knobs");
  }
  c.sim.seed = std::strtoull(sim[0].c_str(), nullptr, 10);
  c.sim.delay_prob = std::strtod(sim[1].c_str(), nullptr);
  c.sim.max_extra_delay_s = std::strtod(sim[2].c_str(), nullptr);
  c.sim.duplicate_prob = std::strtod(sim[3].c_str(), nullptr);
  c.sim.reorder_prob = std::strtod(sim[4].c_str(), nullptr);
  c.sim.max_compute_skew_s = std::strtod(sim[5].c_str(), nullptr);
  for (const std::string& section : split(field(5, "data"), '|')) {
    std::vector<int> d;
    if (!section.empty()) {
      for (const std::string& v : split(section, ',')) {
        d.push_back(std::stoi(v));
      }
    }
    c.data.push_back(std::move(d));
  }
  if (c.data.size() != static_cast<std::size_t>(c.p)) {
    throw ArgumentError("decode_case: data sections != p");
  }
  return c;
}

// -- Shrinking ---------------------------------------------------------------

/// Minimizes a failing case.  Every candidate is a syntactic edit of the
/// encoded case — knobs cleared, rank slices emptied, suffixes halved — in
/// a fixed order, and each probe round-trips through the codec (the exact
/// artifact a replay will decode).  No step consults an RNG or re-derives
/// from the original seed, so the shrunk case is identical on every
/// platform and replays via RSMPI_SIM_CASE verbatim.
Case shrink_case(const Case& failing) {
  Case best = decode_case(encode_case(failing));
  const auto still_fails = [](const Case& candidate) {
    return !run_case(decode_case(encode_case(candidate))).empty();
  };

  // 1. Clear fault knobs one at a time, fixed order.
  struct FaultKnob {
    const char* name;
    void (*clear)(SimConfig&);
  };
  static constexpr FaultKnob kKnobs[] = {
      {"delay", [](SimConfig& s) { s.delay_prob = 0.0; s.max_extra_delay_s = 0.0; }},
      {"duplicate", [](SimConfig& s) { s.duplicate_prob = 0.0; }},
      {"reorder", [](SimConfig& s) { s.reorder_prob = 0.0; }},
      {"skew", [](SimConfig& s) { s.max_compute_skew_s = 0.0; }},
  };
  for (const FaultKnob& knob : kKnobs) {
    Case candidate = best;
    knob.clear(candidate.sim);
    if (still_fails(candidate)) best = std::move(candidate);
  }

  // 2. Empty whole rank slices, ranks ascending (p itself must stay —
  // the machine shape is part of the schedule under test).
  for (std::size_t r = 0; r < best.data.size(); ++r) {
    if (best.data[r].empty()) continue;
    Case candidate = best;
    candidate.data[r].clear();
    if (still_fails(candidate)) best = std::move(candidate);
  }

  // 3. Halve the surviving slices' suffixes while the failure persists.
  for (int round = 0; round < 16; ++round) {
    Case candidate = best;
    bool any = false;
    for (auto& d : candidate.data) {
      if (d.size() > 1) {
        d.resize(d.size() / 2);
        any = true;
      }
    }
    if (!any || !still_fails(candidate)) break;
    best = std::move(candidate);
  }
  return best;
}

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return fallback;
  return std::strtoull(s, nullptr, 10);
}

// -- The sweep ---------------------------------------------------------------

TEST(SimProperty, SeededSweep) {
  if (const char* replay = std::getenv("RSMPI_SIM_CASE")) {
    // Replay of an explicit (possibly shrunk) case string.
    const Case c = decode_case(replay);
    const std::string err = run_case(c);
    EXPECT_TRUE(err.empty()) << "RSMPI_SIM_CASE replay: " << err << "\n  "
                             << c.describe();
    return;
  }
  if (const char* replay = std::getenv("RSMPI_SIM_SEED")) {
    const std::uint64_t seed = std::strtoull(replay, nullptr, 10);
    const Case c = derive_case(seed);
    const std::string err = run_case(c);
    EXPECT_TRUE(err.empty()) << "RSMPI_SIM_SEED=" << seed << ": " << err
                             << "\n  " << c.describe();
    return;
  }

  const std::uint64_t base = env_u64("RSMPI_SIM_SEED_BASE", 0);
  const int count = std::getenv("RSMPI_SIM_EXTENDED") != nullptr ? 2000 : 240;
  int failures = 0;
  for (int i = 0; i < count && failures < 3; ++i) {
    const std::uint64_t seed = base + static_cast<std::uint64_t>(i);
    const Case c = derive_case(seed);
    const std::string err = run_case(c);
    if (err.empty()) continue;
    ++failures;
    const Case shrunk = shrink_case(c);
    ADD_FAILURE() << err << "\n  replay: RSMPI_SIM_SEED=" << seed
                  << " ctest -R SimProperty"
                  << "\n  case:   " << c.describe()
                  << "\n  shrunk: " << shrunk.describe()
                  << "\n  shrunk replay: RSMPI_SIM_CASE='"
                  << encode_case(shrunk) << "'";
  }
}

// One pinned case per schedule so a regression names the schedule directly
// (the sweep would eventually hit it, but with a randomized label).
TEST(SimProperty, EverySchedulePinnedUnderFaults) {
  for (int schedule = 0; schedule < kNumSchedules; ++schedule) {
    for (const int op_kind : {kSumLong, kConcat, kOrderedWord, kTSQR}) {
      Case c;
      c.seed = 9000 + static_cast<std::uint64_t>(schedule);
      c.p = 7;
      c.op_kind = op_kind;
      c.schedule = schedule;
      if (!kind_commutative(op_kind) && schedule == kReduceButterfly) {
        continue;
      }
      c.sim.seed = c.seed;
      c.sim.delay_prob = 0.3;
      c.sim.max_extra_delay_s = 1e-5;
      c.sim.duplicate_prob = 0.3;
      c.sim.reorder_prob = 0.3;
      c.sim.max_compute_skew_s = 5e-6;
      SimRng rng(mprt::splitmix64(c.seed));
      c.data.resize(7);
      for (auto& d : c.data) {
        for (std::uint64_t i = 0, n = 4 + rng.below(8); i < n; ++i) {
          d.push_back(static_cast<int>(rng.below(128)));
        }
      }
      const std::string err = run_case(c);
      EXPECT_TRUE(err.empty())
          << schedule_name(schedule) << " / " << op_name(op_kind) << ": "
          << err << "\n  " << c.describe();
    }
  }
}

// The case codec is the shrinker's substrate: every derived case must
// round-trip exactly (hexfloat knobs included) or replays would diverge
// from the case that failed.
TEST(SimProperty, CaseCodecRoundTrips) {
  for (const std::uint64_t seed : {0ull, 7ull, 123456789ull}) {
    const Case c = derive_case(seed);
    const Case back = decode_case(encode_case(c));
    EXPECT_EQ(back.p, c.p);
    EXPECT_EQ(back.op_kind, c.op_kind);
    EXPECT_EQ(back.schedule, c.schedule);
    EXPECT_EQ(back.sim.seed, c.sim.seed);
    EXPECT_EQ(back.sim.delay_prob, c.sim.delay_prob);
    EXPECT_EQ(back.sim.max_extra_delay_s, c.sim.max_extra_delay_s);
    EXPECT_EQ(back.sim.duplicate_prob, c.sim.duplicate_prob);
    EXPECT_EQ(back.sim.reorder_prob, c.sim.reorder_prob);
    EXPECT_EQ(back.sim.max_compute_skew_s, c.sim.max_compute_skew_s);
    EXPECT_EQ(back.data, c.data);
    EXPECT_EQ(encode_case(back), encode_case(c));
  }
  EXPECT_THROW(decode_case(""), ArgumentError);
  EXPECT_THROW(decode_case("cv1;p=2;op=0;sched=0;sim=0,0,0,0,0,0;data="),
               ArgumentError);  // one data section for p=2
}

// Satellite 6: the shared verify registry is the source of truth for the
// operator zoo — every registered operator must have an OpKind here, so a
// new zoo entry cannot silently skip the property tier.
TEST(SimProperty, EveryRegistryOpIsCovered) {
  const std::vector<std::pair<std::string, int>> covered = {
      {"counts", kCounts},
      {"word", kOrderedWord},
      {"canon", kCanonSet},
      {"tsqr", kTSQR}};
  for (const std::string& name : verify::zoo_names()) {
    bool found = false;
    for (const auto& [zoo_name, kind] : covered) {
      if (zoo_name == name) {
        EXPECT_LT(kind, kNumOpKinds);
        found = true;
      }
    }
    EXPECT_TRUE(found) << "registry operator '" << name
                       << "' has no OpKind in the property suite";
  }
}

// -- Rank virtualization (ISSUE 10) ------------------------------------------
//
// The virtualized scheduler must be invisible to results: the same
// collectives produce bit-identical answers whether each rank is an OS
// thread or a fiber multiplexed onto a small worker pool.

/// Allreduce of registry operator Op at width p under `exec`; returns every
/// rank's result.  The schedule dispatch is production state_allreduce, so
/// commutative ops autotune and ordered ops take the order-preserving path.
template <typename Op>
std::vector<rs::reduce_result_t<Op>> registry_allreduce(
    int p, const mprt::ExecPolicy& exec) {
  std::vector<rs::reduce_result_t<Op>> results(static_cast<std::size_t>(p));
  mprt::run(
      p,
      [&](Comm& comm) {
        Op op = verify::accumulated<Op>(comm.rank());
        rs::detail::state_allreduce(comm, op, verify::make_prototype<Op>());
        results[static_cast<std::size_t>(comm.rank())] = rs::red_result(op);
      },
      mprt::CostModel{}, SimConfig{}, exec);
  return results;
}

// Widths well past the thread-per-rank comfort zone, including awkward
// non-powers-of-two, each on a handful of workers and bit-compared against
// the registry oracle on every rank.
TEST(SimProperty, VirtualizedWidthsMatchOracle) {
  for (const int p : {33, 100, 257}) {
    const mprt::ExecPolicy exec{/*workers=*/6, /*stack_bytes=*/0};
    const auto counts = registry_allreduce<rs::ops::Counts>(p, exec);
    const auto want_counts = verify::expected_result<rs::ops::Counts>(p);
    for (int r = 0; r < p; ++r) {
      ASSERT_TRUE(counts[static_cast<std::size_t>(r)] == want_counts)
          << "counts p=" << p << " rank " << r;
    }
    const auto words = registry_allreduce<verify::OrderedWord>(p, exec);
    const auto want_word = verify::expected_result<verify::OrderedWord>(p);
    for (int r = 0; r < p; ++r) {
      ASSERT_TRUE(words[static_cast<std::size_t>(r)] == want_word)
          << "word p=" << p << " rank " << r;
    }
  }
}

// Threaded-vs-virtualized bit-identity across the whole verify registry
// (TSQR included) at every overlapping width: the scheduler may reorder
// wakeups, but every schedule the dispatch picks is deterministic in its
// combine bracketing, so results must match bit for bit.
TEST(SimProperty, ThreadedVsVirtualizedBitIdentity) {
  const mprt::ExecPolicy threaded{/*workers=*/0, /*stack_bytes=*/0};
  const mprt::ExecPolicy virtualized{/*workers=*/3, /*stack_bytes=*/0};
  for (const int p : {2, 3, 5, 8, 13, 16}) {
    verify::for_each_zoo_op([&](auto tag, const verify::ZooOpInfo& info) {
      using Op = typename decltype(tag)::type;
      const auto a = registry_allreduce<Op>(p, threaded);
      const auto b = registry_allreduce<Op>(p, virtualized);
      for (int r = 0; r < p; ++r) {
        ASSERT_TRUE(a[static_cast<std::size_t>(r)] ==
                    b[static_cast<std::size_t>(r)])
            << info.name << " p=" << p << " rank " << r
            << ": threaded and virtualized runs disagree";
      }
    });
  }
}

// Shrinking the same case twice yields byte-identical encodings — the
// candidate order is fixed and nothing consults an RNG (run_case itself
// is deterministic per case, so the accept/reject sequence repeats).
TEST(SimProperty, ShrinkIsDeterministic) {
  std::vector<Case> cases = {derive_case(4242)};
  // The registry's ordered operators shrink through the same syntactic
  // pipeline — pin one case each so the platform-identical claim covers
  // them explicitly (ISSUE 9 satellite).
  for (const int op_kind : {kOrderedWord, kTSQR}) {
    Case c = derive_case(97);
    c.op_kind = op_kind;
    c.schedule = remap_schedule(op_kind, c.schedule);
    cases.push_back(std::move(c));
  }
  for (const Case& c : cases) {
    const std::string a = encode_case(shrink_case(c));
    const std::string b = encode_case(shrink_case(c));
    EXPECT_EQ(a, b) << op_name(c.op_kind);
  }
}

}  // namespace
