// Fuzzing of the operator serialization hooks (ISSUE 4, satellite 4):
// save_into / load_from / combine_from_bytes (and the save/load fallbacks)
// against truncated and corrupted wire bytes.  The contract under attack:
// a malformed buffer must either load to *some* valid state or throw a
// typed rsmpi::Error — never read out of bounds, never crash, never
// propagate a foreign exception type.  bytes::Reader's bounds checks
// (checked_extent, get_raw) are the mechanism; this suite is the proof.
//
// Every mutation is seeded through SimRng, so a failing (operator, seed)
// pair replays exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "mprt/sim.hpp"
#include "rs/op_concepts.hpp"
#include "rs/ops/basic.hpp"
#include "rs/ops/concat.hpp"
#include "rs/ops/counts.hpp"
#include "rs/ops/histogram.hpp"
#include "rs/ops/mink.hpp"
#include "rs/ops/sketches.hpp"
#include "rs/ops/topbottomk.hpp"
#include "util/error.hpp"

namespace {

using namespace rsmpi;
using mprt::SimRng;
namespace ops = rs::ops;

/// Attempts one load; returns true when it was rejected with a typed
/// Error.  Any other exception type (or a crash) fails the test.
template <typename Op>
bool load_rejected(const Op& prototype, std::span<const std::byte> data) {
  Op victim(prototype);
  try {
    rs::load_op_into(victim, data);
    return false;
  } catch (const Error&) {
    return true;
  }
}

template <typename Op>
bool combine_rejected(const Op& prototype,
                      std::span<const std::byte> data) {
  Op victim(prototype);
  try {
    rs::combine_op_from_bytes(victim, prototype, data);
    return false;
  } catch (const Error&) {
    return true;
  }
}

/// The shared torture routine: round-trip must be exact, every truncation
/// length must be absorbed (valid load or typed Error), and seeded byte
/// corruption must never escape the Error taxonomy.
template <typename Op, typename Check>
void fuzz_operator(const char* name, const Op& prototype, const Op& filled,
                   Check equivalent) {
  const std::vector<std::byte> wire = rs::save_op(filled);
  ASSERT_FALSE(wire.empty()) << name;

  // Round trip through load and through combine-with-identity.
  {
    Op loaded(prototype);
    rs::load_op_into(loaded, wire);
    EXPECT_TRUE(equivalent(loaded, filled)) << name << ": load round trip";
    Op combined(prototype);
    rs::combine_op_from_bytes(combined, prototype, wire);
    EXPECT_TRUE(equivalent(combined, filled)) << name << ": combine round trip";
  }

  // Truncation at every length, including zero.  Exhaustive: truncation is
  // exactly what a short read off the wire produces.
  for (std::size_t len = 0; len < wire.size(); ++len) {
    const std::span<const std::byte> cut(wire.data(), len);
    (void)load_rejected(prototype, cut);     // must not crash / read OOB
    (void)combine_rejected(prototype, cut);  // ditto
  }
  // A truncated buffer can never silently load as the full state.
  {
    Op half(prototype);
    bool loaded_clean = false;
    try {
      rs::load_op_into(half, {wire.data(), wire.size() / 2});
      loaded_clean = true;
    } catch (const Error&) {
    }
    if (loaded_clean) {
      EXPECT_FALSE(equivalent(half, filled))
          << name << ": half a buffer reproduced the full state";
    }
  }

  // Extension: trailing garbage must be rejected, not ignored.
  {
    std::vector<std::byte> extended = wire;
    extended.push_back(std::byte{0x5A});
    EXPECT_TRUE(load_rejected(prototype, extended))
        << name << ": trailing bytes accepted";
  }

  // Seeded corruption: flip 1..4 bytes anywhere (length prefixes
  // included — the interesting mutations are huge or mismatched counts).
  SimRng rng(mprt::splitmix64(0xF0220000ull ^ wire.size()));
  for (int trial = 0; trial < 256; ++trial) {
    std::vector<std::byte> mutated = wire;
    const int flips = 1 + static_cast<int>(rng.below(4));
    for (int f = 0; f < flips; ++f) {
      const auto pos = static_cast<std::size_t>(rng.below(mutated.size()));
      mutated[pos] ^= static_cast<std::byte>(1 + rng.below(255));
    }
    (void)load_rejected(prototype, mutated);
    (void)combine_rejected(prototype, mutated);
  }
}

TEST(SerializationFuzz, Counts) {
  ops::Counts filled(16);
  for (int i = 0; i < 64; ++i) filled.accum(i % 16);
  fuzz_operator("Counts", ops::Counts(16), filled,
                [](const ops::Counts& a, const ops::Counts& b) {
                  return a.red_gen() == b.red_gen();
                });
}

TEST(SerializationFuzz, Concat) {
  ops::Concat filled;
  for (const char c : std::string("the quick brown fox")) filled.accum(c);
  fuzz_operator("Concat", ops::Concat{}, filled,
                [](const ops::Concat& a, const ops::Concat& b) {
                  return a.gen() == b.gen();
                });
}

TEST(SerializationFuzz, Histogram) {
  ops::Histogram<int> filled({0, 10, 20, 30});
  for (int i = -5; i < 40; ++i) filled.accum(i);
  fuzz_operator("Histogram", ops::Histogram<int>({0, 10, 20, 30}), filled,
                [](const ops::Histogram<int>& a, const ops::Histogram<int>& b) {
                  return a.red_gen() == b.red_gen();
                });
}

TEST(SerializationFuzz, MinK) {
  ops::MinK<int> filled(5);
  for (int i = 0; i < 40; ++i) filled.accum((i * 37) % 101);
  fuzz_operator("MinK", ops::MinK<int>(5), filled,
                [](const ops::MinK<int>& a, const ops::MinK<int>& b) {
                  return a.gen() == b.gen();
                });
}

TEST(SerializationFuzz, TopBottomK) {
  ops::TopBottomK<double> filled(4);
  for (int i = 0; i < 32; ++i) {
    filled.accum({static_cast<double>((i * 29) % 83), i});
  }
  fuzz_operator(
      "TopBottomK", ops::TopBottomK<double>(4), filled,
      [](const ops::TopBottomK<double>& a, const ops::TopBottomK<double>& b) {
        const auto ra = a.gen();
        const auto rb = b.gen();
        return ra.largest.size() == rb.largest.size() &&
               ra.smallest.size() == rb.smallest.size();
      });
}

TEST(SerializationFuzz, HyperLogLog) {
  ops::HyperLogLog<long> filled(6);
  for (long i = 0; i < 500; ++i) filled.accum(i * 7919);
  fuzz_operator("HyperLogLog", ops::HyperLogLog<long>(6), filled,
                [](const ops::HyperLogLog<long>& a,
                   const ops::HyperLogLog<long>& b) {
                  return a.gen() == b.gen();
                });
}

TEST(SerializationFuzz, BloomFilter) {
  ops::BloomFilter<long> filled(256, 3);
  for (long i = 0; i < 100; ++i) filled.accum(i * 31);
  fuzz_operator("BloomFilter", ops::BloomFilter<long>(256, 3), filled,
                [&](const ops::BloomFilter<long>& a,
                    const ops::BloomFilter<long>& b) {
                  for (long i = 0; i < 100; ++i) {
                    if (a.maybe_contains(i * 31) != b.maybe_contains(i * 31)) {
                      return false;
                    }
                  }
                  return true;
                });
}

// -- Partitionable-state hooks (ISSUE 7, satellite 2) ------------------------
//
// save_part / load_part / combine_part carry segmented-schedule traffic
// (ring, pipelined-tree, Rabenseifner), so they face the same wire: short
// reads and corrupted bytes.  Contract: a segment buffer of the wrong
// length must be rejected with a typed Error (load_part knows exactly how
// many bytes [lo, hi) takes); a right-length but corrupted buffer may
// load garbage *values* but must never read out of bounds, crash, or
// throw a foreign exception type.

template <typename Op>
bool part_load_rejected(const Op& prototype, std::size_t lo, std::size_t hi,
                        std::span<const std::byte> data) {
  Op victim(prototype);
  try {
    victim.load_part(lo, hi, data);
    return false;
  } catch (const Error&) {
    return true;
  }
}

template <typename Op>
bool part_combine_rejected(const Op& prototype, std::size_t lo,
                           std::size_t hi, std::span<const std::byte> data) {
  Op victim(prototype);
  try {
    victim.combine_part(lo, hi, data);
    return false;
  } catch (const Error&) {
    return true;
  }
}

template <typename Op>
std::vector<std::byte> save_part_bytes(const Op& op, std::size_t lo,
                                       std::size_t hi) {
  bytes::Writer w;
  op.save_part(lo, hi, w);
  return std::move(w).take();
}

/// The partitionable torture routine: full-range and per-segment
/// round-trips must be exact; truncation at *every* prefix of every
/// segment must be absorbed (valid load or typed Error — for part hooks
/// any length but the exact one is a protocol error); seeded bit flips at
/// the exact length must stay inside the Error taxonomy.
template <typename Op, typename Check>
void fuzz_partitionable(const char* name, const Op& prototype,
                        const Op& filled, Check equivalent) {
  static_assert(rs::PartitionableState<Op>);
  const std::size_t extent = filled.part_extent();
  ASSERT_GT(extent, 0u) << name;

  // Full-range round trip through load_part and combine-with-identity.
  {
    const std::vector<std::byte> wire = save_part_bytes(filled, 0, extent);
    EXPECT_EQ(wire.size(), rs::part_state_bytes(filled)) << name;
    Op loaded(prototype);
    loaded.load_part(0, extent, wire);
    EXPECT_TRUE(equivalent(loaded, filled)) << name << ": load_part round trip";
    Op combined(prototype);
    combined.combine_part(0, extent, wire);
    EXPECT_TRUE(equivalent(combined, filled))
        << name << ": combine_part round trip";
  }

  // Segment-by-segment reassembly equals the whole state, and truncation
  // of each segment at every prefix length is rejected or absorbed.
  const std::size_t seg = std::max<std::size_t>(1, extent / 3);
  Op reassembled(prototype);
  for (std::size_t lo = 0; lo < extent; lo += seg) {
    const std::size_t hi = std::min(extent, lo + seg);
    const std::vector<std::byte> wire = save_part_bytes(filled, lo, hi);
    EXPECT_EQ(wire.size(), filled.part_bytes(lo, hi)) << name;
    reassembled.load_part(lo, hi, wire);

    for (std::size_t len = 0; len < wire.size(); ++len) {
      const std::span<const std::byte> cut(wire.data(), len);
      EXPECT_TRUE(part_load_rejected(prototype, lo, hi, cut))
          << name << ": load_part(" << lo << ", " << hi << ") accepted "
          << len << " of " << wire.size() << " bytes";
      EXPECT_TRUE(part_combine_rejected(prototype, lo, hi, cut))
          << name << ": combine_part(" << lo << ", " << hi << ") accepted "
          << len << " of " << wire.size() << " bytes";
    }
    // Over-long buffers are equally malformed.
    {
      std::vector<std::byte> extended = wire;
      extended.push_back(std::byte{0x5A});
      EXPECT_TRUE(part_load_rejected(prototype, lo, hi, extended))
          << name << ": load_part accepted trailing bytes";
    }

    // Exact-length bit flips: values may be garbage, the process may not.
    SimRng rng(mprt::splitmix64(0xF0220701ull ^ (lo << 8) ^ wire.size()));
    for (int trial = 0; trial < 64; ++trial) {
      std::vector<std::byte> mutated = wire;
      const int flips = 1 + static_cast<int>(rng.below(4));
      for (int f = 0; f < flips; ++f) {
        const auto pos = static_cast<std::size_t>(rng.below(mutated.size()));
        mutated[pos] ^= static_cast<std::byte>(1 + rng.below(255));
      }
      (void)part_load_rejected(prototype, lo, hi, mutated);
      (void)part_combine_rejected(prototype, lo, hi, mutated);
    }
  }
  EXPECT_TRUE(equivalent(reassembled, filled))
      << name << ": segment reassembly diverged from the whole state";

  // Out-of-range segment bounds are argument errors, not reads past the
  // state.
  const std::vector<std::byte> wire = save_part_bytes(filled, 0, extent);
  EXPECT_TRUE(part_load_rejected(prototype, 0, extent + 1, wire))
      << name << ": load_part accepted hi > part_extent()";
  EXPECT_TRUE(part_combine_rejected(prototype, extent, extent + 1,
                                    std::span<const std::byte>{}))
      << name << ": combine_part accepted a range past the extent";
}

TEST(SerializationFuzz, CountsParts) {
  ops::Counts filled(16);
  for (int i = 0; i < 64; ++i) filled.accum(i % 16);
  fuzz_partitionable("Counts", ops::Counts(16), filled,
                     [](const ops::Counts& a, const ops::Counts& b) {
                       return a.red_gen() == b.red_gen();
                     });
}

TEST(SerializationFuzz, HistogramParts) {
  ops::Histogram<int> filled({0, 10, 20, 30});
  for (int i = -5; i < 40; ++i) filled.accum(i);
  fuzz_partitionable(
      "Histogram", ops::Histogram<int>({0, 10, 20, 30}), filled,
      [](const ops::Histogram<int>& a, const ops::Histogram<int>& b) {
        return a.red_gen() == b.red_gen();
      });
}

TEST(SerializationFuzz, SumParts) {
  ops::Sum<long> filled;
  for (long i = 1; i <= 100; ++i) filled.accum(i);
  fuzz_partitionable("Sum", ops::Sum<long>{}, filled,
                     [](const ops::Sum<long>& a, const ops::Sum<long>& b) {
                       return a.gen() == b.gen();
                     });
}

// A state arriving under the wrong prototype (mismatched constructor
// parameters) is a protocol violation the load hooks must catch — the
// cross-operator analogue of corruption.
TEST(SerializationFuzz, MismatchedPrototypeIsRejected) {
  ops::Counts eight(8);
  for (int i = 0; i < 8; ++i) eight.accum(i);
  const auto wire = rs::save_op(eight);
  EXPECT_TRUE(load_rejected(ops::Counts(4), wire));
  EXPECT_TRUE(combine_rejected(ops::Counts(4), wire));

  ops::Histogram<int> coarse({0, 50, 100});
  coarse.accum(25);
  EXPECT_TRUE(load_rejected(ops::Histogram<int>({0, 10, 20, 30, 40}),
                            rs::save_op(coarse)));
}

}  // namespace
