// Fuzzing of the operator serialization hooks (ISSUE 4, satellite 4):
// save_into / load_from / combine_from_bytes (and the save/load fallbacks)
// against truncated and corrupted wire bytes.  The contract under attack:
// a malformed buffer must either load to *some* valid state or throw a
// typed rsmpi::Error — never read out of bounds, never crash, never
// propagate a foreign exception type.  bytes::Reader's bounds checks
// (checked_extent, get_raw) are the mechanism; this suite is the proof.
//
// Every mutation is seeded through SimRng, so a failing (operator, seed)
// pair replays exactly.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "mprt/sim.hpp"
#include "rs/op_concepts.hpp"
#include "rs/ops/concat.hpp"
#include "rs/ops/counts.hpp"
#include "rs/ops/histogram.hpp"
#include "rs/ops/mink.hpp"
#include "rs/ops/sketches.hpp"
#include "rs/ops/topbottomk.hpp"
#include "util/error.hpp"

namespace {

using namespace rsmpi;
using mprt::SimRng;
namespace ops = rs::ops;

/// Attempts one load; returns true when it was rejected with a typed
/// Error.  Any other exception type (or a crash) fails the test.
template <typename Op>
bool load_rejected(const Op& prototype, std::span<const std::byte> data) {
  Op victim(prototype);
  try {
    rs::load_op_into(victim, data);
    return false;
  } catch (const Error&) {
    return true;
  }
}

template <typename Op>
bool combine_rejected(const Op& prototype,
                      std::span<const std::byte> data) {
  Op victim(prototype);
  try {
    rs::combine_op_from_bytes(victim, prototype, data);
    return false;
  } catch (const Error&) {
    return true;
  }
}

/// The shared torture routine: round-trip must be exact, every truncation
/// length must be absorbed (valid load or typed Error), and seeded byte
/// corruption must never escape the Error taxonomy.
template <typename Op, typename Check>
void fuzz_operator(const char* name, const Op& prototype, const Op& filled,
                   Check equivalent) {
  const std::vector<std::byte> wire = rs::save_op(filled);
  ASSERT_FALSE(wire.empty()) << name;

  // Round trip through load and through combine-with-identity.
  {
    Op loaded(prototype);
    rs::load_op_into(loaded, wire);
    EXPECT_TRUE(equivalent(loaded, filled)) << name << ": load round trip";
    Op combined(prototype);
    rs::combine_op_from_bytes(combined, prototype, wire);
    EXPECT_TRUE(equivalent(combined, filled)) << name << ": combine round trip";
  }

  // Truncation at every length, including zero.  Exhaustive: truncation is
  // exactly what a short read off the wire produces.
  for (std::size_t len = 0; len < wire.size(); ++len) {
    const std::span<const std::byte> cut(wire.data(), len);
    (void)load_rejected(prototype, cut);     // must not crash / read OOB
    (void)combine_rejected(prototype, cut);  // ditto
  }
  // A truncated buffer can never silently load as the full state.
  {
    Op half(prototype);
    bool loaded_clean = false;
    try {
      rs::load_op_into(half, {wire.data(), wire.size() / 2});
      loaded_clean = true;
    } catch (const Error&) {
    }
    if (loaded_clean) {
      EXPECT_FALSE(equivalent(half, filled))
          << name << ": half a buffer reproduced the full state";
    }
  }

  // Extension: trailing garbage must be rejected, not ignored.
  {
    std::vector<std::byte> extended = wire;
    extended.push_back(std::byte{0x5A});
    EXPECT_TRUE(load_rejected(prototype, extended))
        << name << ": trailing bytes accepted";
  }

  // Seeded corruption: flip 1..4 bytes anywhere (length prefixes
  // included — the interesting mutations are huge or mismatched counts).
  SimRng rng(mprt::splitmix64(0xF0220000ull ^ wire.size()));
  for (int trial = 0; trial < 256; ++trial) {
    std::vector<std::byte> mutated = wire;
    const int flips = 1 + static_cast<int>(rng.below(4));
    for (int f = 0; f < flips; ++f) {
      const auto pos = static_cast<std::size_t>(rng.below(mutated.size()));
      mutated[pos] ^= static_cast<std::byte>(1 + rng.below(255));
    }
    (void)load_rejected(prototype, mutated);
    (void)combine_rejected(prototype, mutated);
  }
}

TEST(SerializationFuzz, Counts) {
  ops::Counts filled(16);
  for (int i = 0; i < 64; ++i) filled.accum(i % 16);
  fuzz_operator("Counts", ops::Counts(16), filled,
                [](const ops::Counts& a, const ops::Counts& b) {
                  return a.red_gen() == b.red_gen();
                });
}

TEST(SerializationFuzz, Concat) {
  ops::Concat filled;
  for (const char c : std::string("the quick brown fox")) filled.accum(c);
  fuzz_operator("Concat", ops::Concat{}, filled,
                [](const ops::Concat& a, const ops::Concat& b) {
                  return a.gen() == b.gen();
                });
}

TEST(SerializationFuzz, Histogram) {
  ops::Histogram<int> filled({0, 10, 20, 30});
  for (int i = -5; i < 40; ++i) filled.accum(i);
  fuzz_operator("Histogram", ops::Histogram<int>({0, 10, 20, 30}), filled,
                [](const ops::Histogram<int>& a, const ops::Histogram<int>& b) {
                  return a.red_gen() == b.red_gen();
                });
}

TEST(SerializationFuzz, MinK) {
  ops::MinK<int> filled(5);
  for (int i = 0; i < 40; ++i) filled.accum((i * 37) % 101);
  fuzz_operator("MinK", ops::MinK<int>(5), filled,
                [](const ops::MinK<int>& a, const ops::MinK<int>& b) {
                  return a.gen() == b.gen();
                });
}

TEST(SerializationFuzz, TopBottomK) {
  ops::TopBottomK<double> filled(4);
  for (int i = 0; i < 32; ++i) {
    filled.accum({static_cast<double>((i * 29) % 83), i});
  }
  fuzz_operator(
      "TopBottomK", ops::TopBottomK<double>(4), filled,
      [](const ops::TopBottomK<double>& a, const ops::TopBottomK<double>& b) {
        const auto ra = a.gen();
        const auto rb = b.gen();
        return ra.largest.size() == rb.largest.size() &&
               ra.smallest.size() == rb.smallest.size();
      });
}

TEST(SerializationFuzz, HyperLogLog) {
  ops::HyperLogLog<long> filled(6);
  for (long i = 0; i < 500; ++i) filled.accum(i * 7919);
  fuzz_operator("HyperLogLog", ops::HyperLogLog<long>(6), filled,
                [](const ops::HyperLogLog<long>& a,
                   const ops::HyperLogLog<long>& b) {
                  return a.gen() == b.gen();
                });
}

TEST(SerializationFuzz, BloomFilter) {
  ops::BloomFilter<long> filled(256, 3);
  for (long i = 0; i < 100; ++i) filled.accum(i * 31);
  fuzz_operator("BloomFilter", ops::BloomFilter<long>(256, 3), filled,
                [&](const ops::BloomFilter<long>& a,
                    const ops::BloomFilter<long>& b) {
                  for (long i = 0; i < 100; ++i) {
                    if (a.maybe_contains(i * 31) != b.maybe_contains(i * 31)) {
                      return false;
                    }
                  }
                  return true;
                });
}

// A state arriving under the wrong prototype (mismatched constructor
// parameters) is a protocol violation the load hooks must catch — the
// cross-operator analogue of corruption.
TEST(SerializationFuzz, MismatchedPrototypeIsRejected) {
  ops::Counts eight(8);
  for (int i = 0; i < 8; ++i) eight.accum(i);
  const auto wire = rs::save_op(eight);
  EXPECT_TRUE(load_rejected(ops::Counts(4), wire));
  EXPECT_TRUE(combine_rejected(ops::Counts(4), wire));

  ops::Histogram<int> coarse({0, 50, 100});
  coarse.accum(25);
  EXPECT_TRUE(load_rejected(ops::Histogram<int>({0, 10, 20, 30, 40}),
                            rs::save_op(coarse)));
}

}  // namespace
