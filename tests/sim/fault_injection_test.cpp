// Negative tests for the fault-injection layer (ISSUE 4): each fault class
// the ChaosController can inject must be *detected* — duplicates by the
// sequence-number watermark, drops by the typed RecvDeadline timeout,
// kills by RankKilledError on the victim and PeerLostError (or the C API's
// RSMPI_ERR_PEER_LOST status) on the survivors.  Plus the replay
// guarantee: the same seed reproduces the same run, bit for bit.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "mprt/runtime.hpp"
#include "mprt/sim.hpp"
#include "rs/ops/basic.hpp"
#include "rs/ops/counts.hpp"
#include "rs/reduce.hpp"
#include "rs/scan.hpp"
#include "rsmpi_c/rsmpi_c.hpp"
#include "util/error.hpp"

namespace {

using namespace rsmpi;
using mprt::Comm;
using mprt::SimConfig;
namespace ops = rs::ops;

// -- Duplicates --------------------------------------------------------------

TEST(FaultInjection, DuplicateStormKeepsCollectivesCorrect) {
  SimConfig sim;
  sim.seed = 7;
  sim.duplicate_prob = 1.0;  // every message delivered twice

  std::vector<long> results(6);
  const auto rr = mprt::run(
      6,
      [&](Comm& comm) {
        std::vector<long> mine = {comm.rank() + 1L, 10L * comm.rank()};
        results[static_cast<std::size_t>(comm.rank())] =
            rs::reduce(comm, mine, ops::Sum<long>{});
      },
      mprt::CostModel{}, sim);

  long expected = 0;
  for (int r = 0; r < 6; ++r) expected += (r + 1L) + 10L * r;
  for (const long v : results) EXPECT_EQ(v, expected);
  EXPECT_GT(rr.sim.duplicated, 0u);
}

TEST(FaultInjection, DuplicatesOnAStreamAreSuppressedAndCounted) {
  SimConfig sim;
  sim.seed = 3;
  sim.duplicate_prob = 1.0;

  constexpr int kMessages = 8;
  constexpr int kTag = 5;
  const auto rr = mprt::run(
      2,
      [&](Comm& comm) {
        if (comm.rank() == 0) {
          for (int i = 0; i < kMessages; ++i) comm.send(1, kTag, i);
        } else {
          // Delivery must be in send order, each message exactly once,
          // despite every one being physically enqueued twice.
          for (int i = 0; i < kMessages; ++i) {
            EXPECT_EQ(comm.recv<int>(0, kTag), i);
          }
          EXPECT_GT(comm.duplicates_suppressed(), 0u);
        }
      },
      mprt::CostModel{}, sim);

  EXPECT_EQ(rr.sim.duplicated, static_cast<std::uint64_t>(kMessages));
  // The duplicate of message i is purged while matching message i+1; only
  // the final message's copy may still be queued unexamined at teardown.
  EXPECT_GE(rr.duplicates_suppressed, static_cast<std::uint64_t>(kMessages - 1));
}

// -- Drops -------------------------------------------------------------------

TEST(FaultInjection, DropsProduceTypedTimeoutAfterRetries) {
  SimConfig sim;
  sim.seed = 11;
  sim.drop_prob = 1.0;  // nothing ever arrives

  std::atomic<int> timeouts{0};
  std::atomic<std::uint64_t> retries{0};
  const auto rr = mprt::run(
      2,
      [&](Comm& comm) {
        if (comm.rank() == 0) {
          comm.send(1, 3, 42);
          return;
        }
        comm.set_recv_deadline(mprt::RecvDeadline{0.2, 3, 2.0});
        try {
          comm.recv<int>(0, 3);
          ADD_FAILURE() << "recv of a dropped message returned";
        } catch (const TimeoutError&) {
          timeouts.fetch_add(1);
          retries.fetch_add(comm.recv_retries());
        }
      },
      mprt::CostModel{}, sim);

  EXPECT_EQ(timeouts.load(), 1);
  EXPECT_EQ(retries.load(), 3u);  // every backoff slice expired
  EXPECT_GE(rr.sim.dropped, 1u);
}

TEST(FaultInjection, DeadlineIsHarmlessWhenMessagesArrive) {
  const auto rr = mprt::run(2, [&](Comm& comm) {
    comm.set_recv_deadline(mprt::RecvDeadline{5.0, 4, 2.0});
    if (comm.rank() == 0) {
      comm.send(1, 1, 7);
    } else {
      EXPECT_EQ(comm.recv<int>(0, 1), 7);
      EXPECT_EQ(comm.recv_retries(), 0u);
    }
  });
  EXPECT_EQ(rr.sim.dropped, 0u);
}

// -- Kills -------------------------------------------------------------------

TEST(FaultInjection, KillMidCollectiveSurfacesRootCause) {
  SimConfig sim;
  sim.seed = 5;
  sim.kill_rank = 1;
  sim.kill_after_sends = 0;  // killed at its first send

  // No rank handles the failure: run() must rethrow the root cause
  // (RankKilledError), not the survivors' PeerLostError symptom — and must
  // not hang.
  EXPECT_THROW(
      mprt::run(
          3,
          [&](Comm& comm) {
            std::vector<long> mine = {1L + comm.rank()};
            rs::reduce(comm, mine, ops::Sum<long>{});
          },
          mprt::CostModel{}, sim),
      RankKilledError);
}

TEST(FaultInjection, SurvivorsObserveTypedPeerLost) {
  SimConfig sim;
  sim.seed = 6;
  sim.kill_rank = 2;
  sim.kill_after_sends = 1;  // survives round one of the butterfly

  std::atomic<int> peer_lost{0};
  EXPECT_THROW(
      mprt::run(
          4,
          [&](Comm& comm) {
            std::vector<long> mine = {1L + comm.rank()};
            try {
              rs::reduce_state(comm, mine, ops::Sum<long>{}, true);
            } catch (const PeerLostError&) {
              // A rank may handle the loss and exit cleanly instead of
              // unwinding into the runtime's abort path.
              peer_lost.fetch_add(1);
            }
          },
          mprt::CostModel{}, sim),
      RankKilledError);
  EXPECT_GE(peer_lost.load(), 1);
}

TEST(FaultInjection, ExitDuringScanDoesNotHang) {
  SimConfig sim;
  sim.seed = 8;
  sim.kill_rank = 0;
  sim.kill_after_sends = 0;

  // Rank 0 dies before its first xscan send; downstream ranks block on it
  // and must get a typed error, not a deadlock (the regression this layer
  // exists to prevent).
  EXPECT_THROW(
      mprt::run(
          5,
          [&](Comm& comm) {
            std::vector<long> mine = {1L + comm.rank(), 2L};
            rs::scan(comm, mine, ops::Sum<long>{}, rs::ScanKind::kExclusive);
          },
          mprt::CostModel{}, sim),
      RankKilledError);
}

// -- Kill through the C API -------------------------------------------------

struct CSum {
  using In = long;
  struct State {
    long total;
  };
  static void ident(State& s) { s.total = 0; }
  static void accum(State& s, const In& x) { s.total += x; }
  static void combine(State& s1, const State& s2) { s1.total += s2.total; }
  static long generate(const State& s) { return s.total; }
};

TEST(FaultInjection, CApiWaitReturnsPeerLostStatus) {
  SimConfig sim;
  sim.seed = 9;
  sim.kill_rank = 1;
  sim.kill_after_sends = 0;

  std::atomic<int> peer_lost_status{0};
  std::atomic<int> other_status{0};
  EXPECT_THROW(
      mprt::run(
          4,
          [&](Comm& comm) {
            long out = 0;
            std::vector<long> mine = {10L * comm.rank()};
            auto req = c_api::RSMPI_Ireduceall<CSum>(&out, mine, comm);
            const int status = c_api::RSMPI_Wait(&req);
            if (status == c_api::RSMPI_ERR_PEER_LOST) {
              peer_lost_status.fetch_add(1);
            } else if (status != c_api::RSMPI_SUCCESS) {
              other_status.fetch_add(1);
            }
            // The handle is freed either way.
            EXPECT_FALSE(req.valid());
          },
          mprt::CostModel{}, sim),
      RankKilledError);
  EXPECT_GE(peer_lost_status.load(), 1);
  EXPECT_EQ(other_status.load(), 0);
}

TEST(CApiStatus, NullRequestWaitAndTestSucceed) {
  c_api::RSMPI_Request null_req;
  EXPECT_EQ(c_api::RSMPI_Wait(&null_req), c_api::RSMPI_SUCCESS);
  int status = -1;
  EXPECT_EQ(c_api::RSMPI_Test(&null_req, &status), 1);
  EXPECT_EQ(status, c_api::RSMPI_SUCCESS);
}

TEST(CApiStatus, WaitallReportsFirstFailure) {
  SimConfig sim;
  sim.seed = 12;
  sim.kill_rank = 2;
  sim.kill_after_sends = 0;

  std::atomic<int> nonsuccess{0};
  EXPECT_THROW(
      mprt::run(
          4,
          [&](Comm& comm) {
            long out = 0;
            std::vector<long> mine = {1L + comm.rank()};
            std::vector<c_api::RSMPI_Request> reqs;
            reqs.push_back(c_api::RSMPI_Ireduceall<CSum>(&out, mine, comm));
            const int status = c_api::RSMPI_Waitall(reqs);
            if (status != c_api::RSMPI_SUCCESS) nonsuccess.fetch_add(1);
          },
          mprt::CostModel{}, sim),
      RankKilledError);
  EXPECT_GE(nonsuccess.load(), 1);
}

// -- Replay ------------------------------------------------------------------

TEST(FaultInjection, SameSeedReplaysIdentically) {
  SimConfig sim;
  sim.seed = 20260805;
  sim.delay_prob = 0.4;
  sim.max_extra_delay_s = 1e-5;
  sim.duplicate_prob = 0.4;
  sim.reorder_prob = 0.4;
  sim.max_compute_skew_s = 5e-6;

  // Deterministic-partner schedules only (butterfly + xscan): wildcard
  // combine-as-available receives fold in physical arrival order, which
  // the host scheduler — not the seed — decides.  Virtual timestamps are
  // excluded from the comparison: the clock charges *measured* per-thread
  // CPU time for compute segments, so makespan is host-noise-dependent
  // even when every fault decision replays exactly.
  const auto once = [&] {
    std::vector<long> reds(6);
    std::vector<std::vector<long>> prefixes(6);
    const auto rr = mprt::run(
        6,
        [&](Comm& comm) {
          const auto r = static_cast<std::size_t>(comm.rank());
          std::vector<long> mine = {3L * comm.rank() + 1, 7L - comm.rank()};
          reds[r] = rs::red_result(
              rs::reduce_state(comm, mine, ops::Sum<long>{}, true));
          prefixes[r] = rs::scan(comm, mine, ops::Sum<long>{},
                                 rs::ScanKind::kExclusive);
        },
        mprt::CostModel{}, sim);
    return std::make_tuple(reds, prefixes, rr.sim.duplicated, rr.sim.delayed,
                           rr.sim.reordered, rr.sim.skew_events,
                           rr.duplicates_suppressed);
  };

  const auto first = once();
  const auto second = once();
  EXPECT_EQ(first, second);
}

}  // namespace
