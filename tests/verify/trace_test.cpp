// Trace codec and replay determinism (ISSUE 7).  The trace wire format is
// the model checker's reproduction contract: every violation prints one,
// and RSMPI_VERIFY_TRACE feeds one back in — so encode/decode must
// round-trip exactly and decoding must reject malformed input loudly
// instead of replaying the wrong execution.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/error.hpp"
#include "verify/checker.hpp"
#include "verify/fault.hpp"
#include "verify/trace.hpp"

namespace {

using namespace rsmpi;
using verify::FaultPlacement;
using verify::Trace;

TEST(TraceCodec, RoundTripsEmptyDecisions) {
  Trace t;
  t.scenario = "counts-ring-p3";
  t.decisions = {{}, {}, {}};
  const std::string encoded = verify::encode_trace(t);
  EXPECT_EQ(encoded, "v1;scn=counts-ring-p3;fault=none;dec=||");
  EXPECT_EQ(verify::decode_trace(encoded), t);
}

TEST(TraceCodec, RoundTripsDecisionsAndFault) {
  Trace t;
  t.scenario = "canon-butterfly-p4";
  t.fault = {FaultPlacement::Kind::kDrop, 1, 2};
  t.decisions = {{}, {2, 0}, {1}, {}};
  const std::string encoded = verify::encode_trace(t);
  EXPECT_EQ(encoded, "v1;scn=canon-butterfly-p4;fault=drop@1.2;dec=|2,0|1|");
  EXPECT_EQ(verify::decode_trace(encoded), t);
}

TEST(TraceCodec, RoundTripsEveryFaultKind) {
  const std::vector<FaultPlacement> placements = {
      {FaultPlacement::Kind::kNone, 0, 0},
      {FaultPlacement::Kind::kDrop, 2, 7},
      {FaultPlacement::Kind::kDuplicate, 0, 0},
      {FaultPlacement::Kind::kReorder, 3, 1},
      {FaultPlacement::Kind::kKill, 1, 4},
  };
  for (const FaultPlacement& placement : placements) {
    Trace t;
    t.scenario = "s";
    t.fault = placement;
    t.decisions = {{1}, {}};
    EXPECT_EQ(verify::decode_trace(verify::encode_trace(t)), t);
  }
}

TEST(TraceCodec, RejectsMalformedInput) {
  const std::vector<std::string> bad = {
      "",
      "v2;scn=s;fault=none;dec=|",          // unknown version
      "v1;scn=s;fault=none",                // missing field
      "v1;scn=s;fault=none;dec=|;extra",    // extra field
      "v1;scn=;fault=none;dec=|",           // empty scenario
      "v1;name=s;fault=none;dec=|",         // wrong key
      "v1;scn=s;fault=bogus;dec=|",         // unknown fault kind
      "v1;scn=s;fault=drop@1;dec=|",        // fault missing index
      "v1;scn=s;fault=drop@x.2;dec=|",      // non-numeric fault rank
      "v1;scn=s;fault=none;dec=1,,2",       // empty decision field
      "v1;scn=s;fault=none;dec=1,a",        // non-numeric decision
      "v1;scn=s;fault=none;dec=99999999999999999999",  // overflow
  };
  for (const std::string& input : bad) {
    EXPECT_THROW(verify::decode_trace(input), ArgumentError)
        << "accepted: '" << input << "'";
  }
}

TEST(FaultPlacementCodec, ParsesAndPrints) {
  EXPECT_EQ(FaultPlacement{}.code(), "none");
  const FaultPlacement kill{FaultPlacement::Kind::kKill, 2, 5};
  EXPECT_EQ(kill.code(), "kill@2.5");
  EXPECT_EQ(FaultPlacement::parse("kill@2.5"), kill);
  EXPECT_EQ(FaultPlacement::parse("none"), FaultPlacement{});
  EXPECT_TRUE(FaultPlacement{}.benign());
  EXPECT_TRUE(
      (FaultPlacement{FaultPlacement::Kind::kDuplicate, 0, 0}).benign());
  EXPECT_TRUE(
      (FaultPlacement{FaultPlacement::Kind::kReorder, 0, 0}).benign());
  EXPECT_FALSE((FaultPlacement{FaultPlacement::Kind::kDrop, 0, 0}).benign());
  EXPECT_FALSE(kill.benign());
}

// Replaying the same trace twice must produce the same outcome — the
// decision string plus fault placement fully determines the execution.
TEST(TraceReplay, ReplayIsDeterministic) {
  const verify::Scenario scenario =
      verify::blocking_scenario<verify::CanonSet>(
          "canon", 3, rs::detail::Schedule::kTwoMessage);
  Trace t;
  t.scenario = scenario.name;
  t.decisions = {{}, {}, {}};
  const verify::ExecutionResult a = verify::replay(scenario, t);
  const verify::ExecutionResult b = verify::replay(scenario, t);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.typed_error, b.typed_error);
  EXPECT_EQ(a.detail, b.detail);
  EXPECT_FALSE(a.failed);
  EXPECT_FALSE(a.typed_error);
}

// The RSMPI_VERIFY_TRACE hook resolves scenarios by name and rejects
// unknown ones.
TEST(TraceReplay, EnvHookResolvesScenario) {
  verify::ScenarioSet set = verify::standard_scenarios(2);
  ASSERT_EQ(verify::replay_from_env(set), std::nullopt);

  const verify::Scenario* known = set.find("counts-two_message-p2");
  ASSERT_NE(known, nullptr);
  ::setenv("RSMPI_VERIFY_TRACE", "v1;scn=counts-two_message-p2;fault=none;dec=|",
           1);
  const auto result = verify::replay_from_env(set);
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->failed);

  ::setenv("RSMPI_VERIFY_TRACE", "v1;scn=no-such-scenario;fault=none;dec=|",
           1);
  EXPECT_THROW(verify::replay_from_env(set), ArgumentError);
  ::unsetenv("RSMPI_VERIFY_TRACE");
}

}  // namespace
