// Mutation detection (ISSUE 7 acceptance): a deliberately-planted
// ordering bug — state_allreduce_mutation_unordered routes *any* operator
// through the commutative-only combine-as-available tree — must be caught
// by the explorer with a minimal, replayable trace.  This is the test
// that proves the model checker can actually see ordering bugs, not just
// bless correct schedules.
#include <gtest/gtest.h>

#include <iostream>

#include "verify/checker.hpp"
#include "verify/explorer.hpp"

namespace {

using namespace rsmpi;
using verify::ExploreLimits;
using verify::Report;
using verify::Scenario;

// With p = 3 the mutated tree folds ranks 1 and 2 into rank 0 in arrival
// order; one of the two orders scrambles the OrderedWord.  The explorer
// must find it, shrink it, and the shrunk trace must still reproduce.
TEST(Mutation, PlantedOrderingBugIsCaught) {
  const Scenario scenario =
      verify::mutation_scenario<verify::OrderedWord>("word", 3);
  ExploreLimits limits;
  limits.faults = false;  // the bug is in the fault-free schedule space
  const Report report = verify::explore(scenario, limits);

  ASSERT_FALSE(report.ok())
      << "the planted ordering bug went undetected across "
      << report.stats.interleavings << " interleavings";
  EXPECT_GT(report.stats.interleavings, 1u)
      << "the mutation must expose genuine arrival-order freedom";

  const verify::Violation& v = report.violations.front();
  std::cout << "caught: " << v.detail << "\n  RSMPI_VERIFY_TRACE="
            << encode_trace(v.trace) << "\n";

  // The shrunk trace is minimal: no fault (the bug needs none), and at
  // least one nonzero decision (the canonical order is the correct one,
  // so the bug only fires on a forced alternative).
  EXPECT_EQ(v.trace.fault, verify::FaultPlacement{});
  std::size_t nonzero = 0;
  std::size_t total = 0;
  for (const auto& rank : v.trace.decisions) {
    total += rank.size();
    for (const int d : rank) nonzero += d != 0 ? 1 : 0;
  }
  EXPECT_GT(nonzero, 0u) << "shrunk trace carries no forced decision";
  EXPECT_LE(total, 2u) << "trace not minimal: " << encode_trace(v.trace);

  // Replay-validated: the minimal trace reproduces the failure exactly.
  const verify::ExecutionResult replayed = verify::replay(scenario, v.trace);
  EXPECT_TRUE(replayed.failed)
      << "minimal trace did not reproduce: " << encode_trace(v.trace);
}

// Same detection on real linear algebra (ISSUE 9): TSQR's R-factor merge
// is commutative only up to rounding, so the mutated arrival-order tree
// produces a bit-different R on some interleaving — the explorer must
// catch the planted bug on a numerical operator, not just on the
// token-concat witness.
TEST(Mutation, PlantedOrderingBugIsCaughtOnTsqr) {
  const Scenario scenario =
      verify::mutation_scenario<rs::ops::TSQR>("tsqr", 3);
  ExploreLimits limits;
  limits.faults = false;
  const Report report = verify::explore(scenario, limits);
  ASSERT_FALSE(report.ok())
      << "the planted ordering bug went undetected on TSQR across "
      << report.stats.interleavings << " interleavings";
  const verify::Violation& v = report.violations.front();
  const verify::ExecutionResult replayed = verify::replay(scenario, v.trace);
  EXPECT_TRUE(replayed.failed)
      << "minimal trace did not reproduce: " << encode_trace(v.trace);
}

// The same mutated path is *correct* for a commutative operator — the
// explorer must bless it, proving detection is about ordering semantics,
// not about the unordered tree per se.
TEST(Mutation, UnorderedTreeIsCorrectForCommutativeOps) {
  const Scenario scenario =
      verify::mutation_scenario<rs::ops::Counts>("counts", 3);
  ExploreLimits limits;
  limits.faults = false;
  const Report report = verify::explore(scenario, limits);
  EXPECT_TRUE(report.ok());
  for (const verify::Violation& v : report.violations) {
    ADD_FAILURE() << v.detail;
  }
}

// Shrinking is deterministic: exploring the same mutated scenario twice
// yields byte-identical minimal traces (satellite 6's contract, enforced
// at the explorer level).
TEST(Mutation, MinimalTraceIsDeterministic) {
  const Scenario scenario =
      verify::mutation_scenario<verify::OrderedWord>("word", 3);
  ExploreLimits limits;
  limits.faults = false;
  const Report a = verify::explore(scenario, limits);
  const Report b = verify::explore(scenario, limits);
  ASSERT_FALSE(a.ok());
  ASSERT_FALSE(b.ok());
  ASSERT_EQ(a.violations.size(), b.violations.size());
  for (std::size_t i = 0; i < a.violations.size(); ++i) {
    EXPECT_EQ(encode_trace(a.violations[i].trace),
              encode_trace(b.violations[i].trace));
  }
}

}  // namespace
