// Satellite 3: svc::PersistentPlan replay under exhaustive single-fault
// placement.  A persistent handle plans once and replays the frozen plan
// every epoch; the contract under faults is the same as for fresh
// collectives — every epoch that completes on a rank is bit-identical to
// the serial oracle (in particular the pre-fault epoch), and a faulted
// epoch surfaces a *typed* error.  The failure mode this hunts is the
// stale-tag hang: a fault in epoch 2 leaving a rank blocked on epoch-1
// tags forever.  The starvation monitor converts any such hang into
// DeadlockError, which the explorer accepts for lossy faults and flags
// for benign ones.
#include <gtest/gtest.h>

#include <iostream>

#include "verify/checker.hpp"
#include "verify/explorer.hpp"

namespace {

using namespace rsmpi;
using verify::ExploreLimits;
using verify::Report;
using verify::Scenario;

void expect_clean(const Scenario& scenario, const Report& report) {
  EXPECT_TRUE(report.ok()) << scenario.name;
  for (const verify::Violation& v : report.violations) {
    ADD_FAILURE() << scenario.name << ": " << v.detail << "\n  replay with "
                  << "RSMPI_VERIFY_TRACE=" << encode_trace(v.trace);
  }
  EXPECT_FALSE(report.stats.budget_exhausted) << scenario.name;
}

// Every message of the two-epoch canonical run dropped / duplicated /
// reordered once, every send a kill site.  The kill placements include
// sends inside epoch 2, so the pre-fault epoch-1 results are checked on
// the surviving ranks (the runner verifies every *completed* epoch).
TEST(PersistentFault, CountsTwoEpochsUnderAllPlacementsP2) {
  const Scenario scenario =
      verify::persistent_scenario<rs::ops::Counts>("counts", 2);
  const Report report = verify::explore(scenario, ExploreLimits{});
  expect_clean(scenario, report);
  EXPECT_GT(report.stats.fault_placements, 0u);
  EXPECT_GT(report.stats.fault_executions, 0u);
  std::cout << "[counts-persistent-p2] placements="
            << report.stats.fault_placements
            << " fault_executions=" << report.stats.fault_executions << "\n";
}

TEST(PersistentFault, CountsTwoEpochsUnderAllPlacementsP3) {
  const Scenario scenario =
      verify::persistent_scenario<rs::ops::Counts>("counts", 3);
  const Report report = verify::explore(scenario, ExploreLimits{});
  expect_clean(scenario, report);
  EXPECT_GT(report.stats.fault_placements, 0u);
}

// The noncommutative path through the frozen plan: order-preserving
// reduce+bcast, replayed twice, under the full placement space.
TEST(PersistentFault, OrderedWordTwoEpochsUnderAllPlacementsP2) {
  const Scenario scenario =
      verify::persistent_scenario<verify::OrderedWord>("word", 2);
  const Report report = verify::explore(scenario, ExploreLimits{});
  expect_clean(scenario, report);
  EXPECT_GT(report.stats.fault_placements, 0u);
}

// Fault-free persistent replay must be deterministic and decision-free on
// the noncommutative path (satellite 1 extended to the plan executor).
TEST(PersistentFault, OrderedWordPlanReplayHasNoScheduleFreedom) {
  const Scenario scenario =
      verify::persistent_scenario<verify::OrderedWord>("word", 3);
  ExploreLimits limits;
  limits.faults = false;
  const Report report = verify::explore(scenario, limits);
  expect_clean(scenario, report);
  EXPECT_EQ(report.stats.interleavings, 1u);
  EXPECT_EQ(report.stats.max_decisions, 0u);
}

}  // namespace
