// Exhaustive schedule-space exploration (ISSUE 7 tentpole): every
// scenario in the standard checker matrix — five autotuned schedules x
// {commutative, noncommutative}, the nonblocking paths, the persistent
// plan — is driven through every reachable delivery interleaving at
// p in {2, 3, 4} and checked against the serial oracle, with zero
// violations.  A fault pass re-explores representative scenarios under
// every single-message drop/duplicate/reorder and every single-rank kill.
//
// Satellite 1 rides here: the noncommutative OrderedWord scenarios must
// present *zero* schedule freedom (one interleaving, no decisions, no
// pruned orders) — a commutative-only schedule ever being selected for a
// noncommutative operator would surface as choice points or violations.
//
// Satellite 5's pruning-regression guard also rides here: the explored
// interleaving count per scenario is capped at 10x the recorded floor, so
// a regression in the all-orders equivalence probe (which collapses
// commutative fold orders without consulting the oracle) fails the build
// instead of silently exploding the state space.
#include <gtest/gtest.h>

#include <cstdlib>
#include <iostream>
#include <map>
#include <string>

#include "verify/checker.hpp"
#include "verify/explorer.hpp"

namespace {

using namespace rsmpi;
using verify::ExploreLimits;
using verify::Report;
using verify::Scenario;

void expect_clean(const Scenario& scenario, const Report& report) {
  EXPECT_TRUE(report.ok()) << scenario.name << ": "
                           << report.violations.size() << " violation(s)";
  for (const verify::Violation& v : report.violations) {
    ADD_FAILURE() << scenario.name << ": " << v.detail << "\n  replay with "
                  << "RSMPI_VERIFY_TRACE=" << encode_trace(v.trace);
  }
  EXPECT_FALSE(report.stats.budget_exhausted) << scenario.name;
  EXPECT_GT(report.stats.executions, 0u) << scenario.name;
  EXPECT_GE(report.stats.interleavings, 1u) << scenario.name;
}

/// Satellite 5: per-scenario interleaving floors measured at the pruning
/// baseline (the all-orders probe collapsing byte-identical fold orders).
/// The guard fails if exploration exceeds 10x the floor — i.e. if pruning
/// regresses by more than an order of magnitude.  Scenarios not listed
/// are capped by the generous default.
std::uint64_t interleaving_cap(const std::string& name) {
  static const std::map<std::string, std::uint64_t> floors = {
      {"canon-two_message-p2", 1}, {"canon-two_message-p3", 2},
      {"canon-two_message-p4", 6}, {"canon-butterfly-p2", 1},
      {"canon-butterfly-p3", 2},   {"canon-butterfly-p4", 1},
      {"canon-nbtree-p2", 1},      {"canon-nbtree-p3", 2},
      {"canon-nbtree-p4", 6},
  };
  const auto it = floors.find(name);
  const std::uint64_t floor = it == floors.end() ? 10 : it->second;
  return floor * 10;
}

void explore_all(int p, bool with_faults) {
  const verify::ScenarioSet set = verify::standard_scenarios(p);
  ASSERT_FALSE(set.all().empty());
  for (const Scenario& scenario : set.all()) {
    ExploreLimits limits;
    limits.faults = with_faults;
    const Report report = verify::explore(scenario, limits);
    expect_clean(scenario, report);
    EXPECT_LE(report.stats.interleavings, interleaving_cap(scenario.name))
        << scenario.name << ": pruning regressed (explored "
        << report.stats.interleavings << " interleavings)";

    const bool ordered = scenario.name.rfind("word-", 0) == 0 ||
                         scenario.name.rfind("tsqr-", 0) == 0;
    if (ordered) {
      // Noncommutative operators must always take an order-preserving
      // schedule — no arrival-order freedom at all.  This holds for the
      // token-concat witness (OrderedWord) and for real linear algebra
      // (TSQR, ISSUE 9): every schedule name, the pipelined column-panel
      // path, the async state machine, and the persistent replay present
      // exactly one interleaving with zero decisions and zero pruned
      // orders.
      EXPECT_EQ(report.stats.interleavings, 1u) << scenario.name;
      EXPECT_EQ(report.stats.max_decisions, 0u) << scenario.name;
      EXPECT_EQ(report.stats.pruned_orders, 0u) << scenario.name;
    }
  }
}

TEST(Exhaustive, AllScenariosP2) { explore_all(2, /*with_faults=*/false); }
TEST(Exhaustive, AllScenariosP3) { explore_all(3, /*with_faults=*/false); }
TEST(Exhaustive, AllScenariosP4) { explore_all(4, /*with_faults=*/false); }

// p = 5 is the nightly tier (RSMPI_VERIFY_P5=1 in CI's scheduled job);
// the space is larger and the single-core runners keep it off the
// per-push path.
TEST(Exhaustive, AllScenariosP5Nightly) {
  const char* gate = std::getenv("RSMPI_VERIFY_P5");
  if (gate == nullptr || std::string(gate) != "1") {
    GTEST_SKIP() << "set RSMPI_VERIFY_P5=1 to run the p=5 tier";
  }
  explore_all(5, /*with_faults=*/false);
}

// The fault matrix on representative scenarios: the order-preserving
// two-message exchange, the unordered nonblocking tree (the scenario with
// genuine arrival-order freedom), and the production async dispatch.
// Every message of the canonical run is dropped, duplicated, and
// reordered once; every send is a kill site.  Benign faults must leave
// the result bit-identical; lossy faults may surface typed errors (the
// starvation monitor turns would-be hangs into DeadlockError) but must
// never corrupt a completed rank's result.
TEST(Exhaustive, FaultPlacementsP2) {
  for (const Scenario& scenario : {
           verify::blocking_scenario<rs::ops::Counts>(
               "counts", 2, rs::detail::Schedule::kTwoMessage),
           verify::blocking_scenario<verify::OrderedWord>(
               "word", 2, rs::detail::Schedule::kTwoMessage),
           verify::nb_tree_scenario<verify::CanonSet>("canon", 2),
           verify::blocking_scenario<rs::ops::TSQR>(
               "tsqr", 2, rs::detail::Schedule::kTwoMessage),
           verify::pipelined_panel_scenario<rs::ops::TSQR>("tsqr", 2),
       }) {
    const Report report = verify::explore(scenario, ExploreLimits{});
    expect_clean(scenario, report);
    EXPECT_GT(report.stats.fault_placements, 0u) << scenario.name;
    EXPECT_GT(report.stats.fault_executions, 0u) << scenario.name;
  }
}

TEST(Exhaustive, FaultPlacementsP3) {
  for (const Scenario& scenario : {
           verify::blocking_scenario<rs::ops::Counts>(
               "counts", 3, rs::detail::Schedule::kTwoMessage),
           verify::blocking_scenario<verify::OrderedWord>(
               "word", 3, rs::detail::Schedule::kTwoMessage),
           verify::nb_tree_scenario<verify::CanonSet>("canon", 3),
           verify::async_scenario<rs::ops::Counts>("counts", 3),
           verify::blocking_scenario<rs::ops::TSQR>(
               "tsqr", 3, rs::detail::Schedule::kTwoMessage),
       }) {
    const Report report = verify::explore(scenario, ExploreLimits{});
    expect_clean(scenario, report);
    EXPECT_GT(report.stats.fault_placements, 0u) << scenario.name;
  }
}

// The equivalence probe must actually be pruning: the commutative Counts
// operator's fold orders are byte-identical, so every k-ary-tree join
// collapses to one canonical order with the skipped permutations counted.
TEST(Exhaustive, PruningCollapsesCommutativeOrders) {
  const Scenario scenario =
      verify::nb_tree_scenario<rs::ops::Counts>("counts", 4);
  ExploreLimits limits;
  limits.faults = false;
  const Report report = verify::explore(scenario, limits);
  expect_clean(scenario, report);
  EXPECT_EQ(report.stats.interleavings, 1u)
      << "byte-identical fold orders must not branch";
  EXPECT_GT(report.stats.pruned_orders, 0u)
      << "the all-orders probe never fired";
}

// And the insertion-ordered CanonSet defeats the probe: its fold orders
// differ byte-wise, so the explorer must genuinely branch — and every
// branch must still agree with the serial oracle because gen() sorts.
TEST(Exhaustive, CanonSetForcesRealBranching) {
  const Scenario scenario =
      verify::nb_tree_scenario<verify::CanonSet>("canon", 4);
  ExploreLimits limits;
  limits.faults = false;
  const Report report = verify::explore(scenario, limits);
  expect_clean(scenario, report);
  EXPECT_GT(report.stats.interleavings, 1u)
      << "payload-distinct fold orders must branch";
  EXPECT_GT(report.stats.max_decisions, 0u);
  std::cout << "[canon-nbtree-p4] interleavings="
            << report.stats.interleavings
            << " pruned=" << report.stats.pruned_orders
            << " max_decisions=" << report.stats.max_decisions << "\n";
}

// Satellite 6: the scenario matrix is enumerated from the shared
// registry, so every registered operator must surface in the standard set
// — an operator added to verify/registry.hpp cannot silently skip the
// exhaustive tier.
TEST(Exhaustive, EveryRegistryOpHasScenarios) {
  const verify::ScenarioSet set = verify::standard_scenarios(3);
  for (const std::string& name : verify::zoo_names()) {
    int found = 0;
    for (const Scenario& s : set.all()) {
      if (s.name.rfind(name + "-", 0) == 0) ++found;
    }
    EXPECT_GE(found, 3) << "registry operator '" << name
                        << "' is missing from the exhaustive matrix";
  }
}

}  // namespace
