// Tests for the RSMPI C-style surface: Listing 8's sorted operator
// verbatim, the counts operator with split generate functions, the
// default-communicator convenience, and equivalence with the native
// operator-class layer.
#include <gtest/gtest.h>

#include <climits>
#include <numeric>
#include <vector>

#include "mprt/runtime.hpp"
#include "rs/ops/ops.hpp"
#include "rs/reduce.hpp"
#include "rsmpi_c/rsmpi_c.hpp"

namespace {

using namespace rsmpi;

/// Listing 8, transliterated field for field.
struct CSorted {
  using In = int;
  struct State {
    int first, last;
    int status;
  };
  static constexpr bool commutative = false;  // `non-commutative`

  static void ident(State& s) {
    s.first = INT_MAX;
    s.last = INT_MIN;
    s.status = 1;
  }
  static void pre_accum(State& s, const In& i) { s.first = i; }
  static void accum(State& s, const In& i) {
    if (s.last > i) s.status = 0;
    s.last = i;
  }
  static void combine(State& s1, const State& s2) {
    s1.status = s1.status && s2.status && (s1.last <= s2.first);
    s1.last = s2.last;
  }
  static int generate(const State& s) { return s.status; }
};

/// Listing 6's counts operator in the C shape: red vs scan generates.
struct CCounts {
  using In = int;
  static constexpr std::size_t kBuckets = 8;
  struct State {
    long v[kBuckets];
  };
  static void ident(State& s) {
    for (auto& c : s.v) c = 0;
  }
  static void accum(State& s, const In& x) { s.v[x] += 1; }
  static void combine(State& s1, const State& s2) {
    for (std::size_t i = 0; i < kBuckets; ++i) s1.v[i] += s2.v[i];
  }
  static std::vector<long> generate(const State& s) {
    return {s.v, s.v + kBuckets};
  }
  static long scan_generate(const State& s, const In& x) { return s.v[x]; }
};

class CApiSweep : public ::testing::TestWithParam<int> {};

TEST_P(CApiSweep, SortedReduceallAcceptsSortedData) {
  const int p = GetParam();
  mprt::run(p, [](mprt::Comm& comm) {
    std::vector<int> mine(20);
    std::iota(mine.begin(), mine.end(), comm.rank() * 20);
    int sorted = 0;
    c_api::RSMPI_Reduceall<CSorted>(&sorted, mine, comm);
    EXPECT_EQ(sorted, 1);
  });
}

TEST_P(CApiSweep, SortedReduceallRejectsBoundaryViolations) {
  const int p = GetParam();
  if (p < 2) GTEST_SKIP() << "needs a rank boundary";
  mprt::run(p, [](mprt::Comm& comm) {
    // Descending across ranks, ascending within.
    std::vector<int> mine(5);
    std::iota(mine.begin(), mine.end(), (comm.size() - comm.rank()) * 100);
    int sorted = 1;
    c_api::RSMPI_Reduceall<CSorted>(&sorted, mine, comm);
    EXPECT_EQ(sorted, 0);
  });
}

TEST_P(CApiSweep, DefaultCommunicatorIsTheWorld) {
  // §4: "the common case of using the MPI_COMM_WORLD communication group
  // as a default if another is omitted."
  const int p = GetParam();
  mprt::run(p, [](mprt::Comm& comm) {
    std::vector<int> mine(10);
    std::iota(mine.begin(), mine.end(), comm.rank() * 10);
    int sorted = 0;
    c_api::RSMPI_Reduceall<CSorted>(&sorted, mine);  // no comm argument
    EXPECT_EQ(sorted, 1);
  });
}

TEST_P(CApiSweep, ReduceDeliversToRootOnly) {
  const int p = GetParam();
  mprt::run(p, [](mprt::Comm& comm) {
    std::vector<int> mine = {comm.rank(), comm.rank() + 1};
    int sorted = -1;
    c_api::RSMPI_Reduce<CSorted>(&sorted, 0, mine, comm);
    if (comm.rank() == 0) {
      EXPECT_NE(sorted, -1);
    } else {
      EXPECT_EQ(sorted, -1);  // untouched off-root
    }
  });
}

TEST_P(CApiSweep, CountsScanMatchesNativeOperator) {
  const int p = GetParam();
  mprt::run(p, [](mprt::Comm& comm) {
    std::vector<int> mine;
    for (int i = 0; i < 30; ++i) {
      mine.push_back((comm.rank() * 30 + i) % 8);
    }
    std::vector<long> c_ranks;
    c_api::RSMPI_Scan<CCounts>(&c_ranks, mine, comm);
    const auto native = rs::scan(comm, mine, rs::ops::Counts(8));
    EXPECT_EQ(c_ranks, native);

    std::vector<long> c_counts;
    c_api::RSMPI_Reduceall<CCounts>(&c_counts, mine, comm);
    EXPECT_EQ(c_counts, rs::reduce(comm, mine, rs::ops::Counts(8)));
  });
}

TEST_P(CApiSweep, ExscanStartsAtIdentity) {
  const int p = GetParam();
  mprt::run(p, [](mprt::Comm& comm) {
    std::vector<int> mine = {comm.rank() % 8};
    std::vector<long> out;
    c_api::RSMPI_Exscan<CCounts>(&out, mine, comm);
    ASSERT_EQ(out.size(), 1u);
    if (comm.rank() == 0) {
      EXPECT_EQ(out[0], 0);  // identity state: nothing counted yet
    }
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, CApiSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 16));

TEST(CApi, ThisCommOutsideRunThrows) {
  EXPECT_THROW((void)mprt::this_comm(), Error);
}

TEST(CApi, GetStatsSnapshotsRankCounters) {
  mprt::run(3, [](mprt::Comm& comm) {
    c_api::RSMPI_Stats before;
    c_api::RSMPI_GetStats(&before, comm);
    EXPECT_EQ(before.messages_sent, 0u);
    EXPECT_EQ(before.messages_received, 0u);
    EXPECT_EQ(before.collective_tags_consumed, 0);

    std::vector<int> mine = {comm.rank() % 8, (comm.rank() + 1) % 8};
    std::vector<long> counts;
    c_api::RSMPI_Reduceall<CCounts>(&counts, mine, comm);

    c_api::RSMPI_Stats after;
    c_api::RSMPI_GetStats(&after, comm);
    EXPECT_GT(after.messages_sent, 0u);
    EXPECT_GT(after.bytes_sent, 0u);
    EXPECT_GT(after.messages_received, 0u);
    EXPECT_GT(after.collective_tags_consumed, 0);
    // No chaos configured: the sim totals stay zero.
    EXPECT_EQ(after.chaos_dropped, 0u);
    EXPECT_EQ(after.chaos_duplicated, 0u);
    EXPECT_EQ(after.chaos_rank_killed, 0);
  });
}

// Virtualization and topology counters through the C stats surface
// (ISSUE 10): a virtualized run on a two-tier model reports its worker
// pool and the per-tier traffic split; a plain threaded flat run keeps
// all five new fields at zero.
TEST(CApi, GetStatsSurfacesVirtualizationAndTiers) {
  mprt::run(8, [](mprt::Comm& comm) {
    std::vector<int> mine = {comm.rank() % 8};
    std::vector<long> counts;
    c_api::RSMPI_Reduceall<CCounts>(&counts, mine, comm);
    c_api::RSMPI_Stats stats;
    c_api::RSMPI_GetStats(&stats, comm);
    EXPECT_EQ(stats.workers, 4u);
    EXPECT_GT(stats.park_events, 0u);
    EXPECT_GT(stats.intra_node_bytes + stats.inter_node_bytes, 0u);
    EXPECT_EQ(stats.intra_node_bytes + stats.inter_node_bytes,
              stats.bytes_sent);
  }, mprt::CostModel::cluster_of_smp(4), mprt::SimConfig{},
  mprt::ExecPolicy{/*workers=*/4, /*stack_bytes=*/0});

  mprt::run(2, [](mprt::Comm& comm) {
    std::vector<int> mine = {comm.rank() % 8};
    std::vector<long> counts;
    c_api::RSMPI_Reduceall<CCounts>(&counts, mine, comm);
    c_api::RSMPI_Stats stats;
    c_api::RSMPI_GetStats(&stats, comm);
    EXPECT_EQ(stats.workers, 0u);
    EXPECT_EQ(stats.parked_ranks, 0u);
    EXPECT_EQ(stats.park_events, 0u);
    EXPECT_EQ(stats.intra_node_bytes, 0u);
    EXPECT_EQ(stats.inter_node_bytes, 0u);
  }, mprt::CostModel{}, mprt::SimConfig{},
  mprt::ExecPolicy{/*workers=*/0, /*stack_bytes=*/0});
}

TEST(CApi, GetStatsDefaultsToThisComm) {
  mprt::run(2, [](mprt::Comm& comm) {
    std::vector<int> mine = {comm.rank() % 8};
    std::vector<long> counts;
    c_api::RSMPI_Reduceall<CCounts>(&counts, mine, comm);
    c_api::RSMPI_Stats stats;
    c_api::RSMPI_GetStats(&stats);  // implicit mprt::this_comm()
    EXPECT_EQ(stats.messages_sent, comm.messages_sent());
    EXPECT_EQ(stats.bytes_received, comm.bytes_received());
    EXPECT_EQ(stats.collective_tags_consumed,
              comm.collective_tags_consumed());
  });
}

TEST(CApi, AdapterTraits) {
  using SortedAdapter = c_api::detail::Adapter<CSorted>;
  using CountsAdapter = c_api::detail::Adapter<CCounts>;
  static_assert(rs::ReductionOp<SortedAdapter, int>);
  static_assert(rs::ScanOp<CountsAdapter, int>);
  static_assert(std::is_trivially_copyable_v<SortedAdapter>);
  EXPECT_FALSE(rs::op_commutative<SortedAdapter>());
  EXPECT_TRUE(rs::op_commutative<CountsAdapter>());
  static_assert(rs::HasPreAccum<SortedAdapter, int>);
  static_assert(!rs::HasPostAccum<SortedAdapter, int>);
}

}  // namespace
