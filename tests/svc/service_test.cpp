// Service tests (svc/service.hpp): multi-tenant sharded streams must be
// bit-identical to a serial oracle (sharding and merging are transparent
// for exact commutative operators), and degradation must be per-stream —
// a killed shard retires exactly its streams, a killed ingester costs one
// torn epoch, and surviving streams keep emitting oracle-exact windows.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "mprt/runtime.hpp"
#include "rs/ops/ops.hpp"
#include "rs/reduce.hpp"
#include "svc/service.hpp"

namespace {

using namespace rsmpi;
namespace ops = rs::ops;
using mprt::Comm;
using svc::Event;

/// Deterministic event load: what rank r stages for stream `salt` in
/// epoch e.  Tests regenerate the same events serially for the oracle.
std::vector<Event> load(int rank, int epoch, int salt, int count = 16) {
  std::vector<Event> events;
  events.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const auto key = static_cast<std::uint64_t>(salt * 1'000'000 +
                                                rank * 10'000 + epoch * 100 + i);
    events.push_back(Event{key, static_cast<double>((key * 31 + 7) % 1000)});
  }
  return events;
}

/// Oracle: accumulate every event of `epochs` × `ranks` for one stream
/// into a fresh operator and read the result.  Valid for exact
/// commutative operators, where fold/merge order cannot matter.
template <typename Op, typename Extract>
rs::reduce_result_t<Op> oracle(const Op& prototype, Extract extract,
                               const std::vector<int>& ranks,
                               const std::vector<int>& epochs, int salt) {
  Op agg = prototype;
  for (const int e : epochs) {
    for (const int r : ranks) {
      for (const Event& ev : load(r, e, salt)) agg.accum(extract(ev));
    }
  }
  return rs::red_result(agg);
}

const auto kSumValues = [](const Event& e) {
  return static_cast<long>(e.value);
};
const auto kKeyMod8 = [](const Event& e) {
  return static_cast<int>(e.key % 8);
};
const auto kKeys = [](const Event& e) { return e.key; };
const auto kMinValues = [](const Event& e) { return static_cast<int>(e.value); };

svc::WindowConfig tumbling1() {
  svc::WindowConfig cfg;
  cfg.window_epochs = 1;
  return cfg;
}

svc::WindowConfig sliding(std::size_t w, std::size_t s) {
  svc::WindowConfig cfg;
  cfg.window_epochs = w;
  cfg.slide_epochs = s;
  return cfg;
}

TEST(Service, MultiTenantMatchesSerialOracle) {
  constexpr int kRanks = 8;
  constexpr int kEpochs = 6;
  std::vector<int> all_ranks;
  for (int r = 0; r < kRanks; ++r) all_ranks.push_back(r);
  const std::vector<int> counts_members = {1, 3, 4, 6};
  const std::vector<int> hll_members = {0, 2, 5, 7};
  const std::vector<int> min_members = {2, 3};

  // [rank][epoch] emissions, harvested from inside the run.
  std::vector<std::vector<std::optional<long>>> sum_out(kRanks);
  std::vector<std::vector<std::optional<rs::reduce_result_t<ops::Counts>>>>
      counts_out(kRanks);
  std::vector<std::vector<
      std::optional<rs::reduce_result_t<ops::HyperLogLog<std::uint64_t>>>>>
      hll_out(kRanks);
  std::vector<std::vector<std::optional<int>>> min_out(kRanks);

  mprt::run(kRanks, [&](Comm& comm) {
    svc::Service service(comm);
    auto& sum = service.add_stream("sum", all_ranks, ops::Sum<long>{},
                                   kSumValues, tumbling1());
    auto& counts = service.add_stream("counts", counts_members, ops::Counts(8),
                                      kKeyMod8, tumbling1());
    auto& hll = service.add_stream("hll", hll_members,
                                   ops::HyperLogLog<std::uint64_t>(10), kKeys,
                                   tumbling1());
    auto& min = service.add_stream("min", min_members, ops::Min<int>{},
                                   kMinValues, sliding(3, 1));

    for (int e = 1; e <= kEpochs; ++e) {
      sum.stage(load(comm.rank(), e, /*salt=*/1));
      counts.stage(load(comm.rank(), e, /*salt=*/2));
      hll.stage(load(comm.rank(), e, /*salt=*/3));
      min.stage(load(comm.rank(), e, /*salt=*/4));
      service.step_epoch();
      const auto r = static_cast<std::size_t>(comm.rank());
      sum_out[r].push_back(sum.last_window());
      counts_out[r].push_back(counts.last_window());
      hll_out[r].push_back(hll.last_window());
      min_out[r].push_back(min.last_window());
    }
    EXPECT_EQ(service.epoch(), static_cast<std::uint64_t>(kEpochs));
    EXPECT_EQ(service.stats().degraded_streams(), 0u);
  });

  auto is_member = [](const std::vector<int>& members, int r) {
    for (const int m : members) {
      if (m == r) return true;
    }
    return false;
  };

  for (int r = 0; r < kRanks; ++r) {
    for (int e = 1; e <= kEpochs; ++e) {
      const auto i = static_cast<std::size_t>(e - 1);
      // Tumbling width-1 windows: every member emits the epoch's global
      // aggregate; non-members never emit.
      if (is_member(all_ranks, r)) {
        ASSERT_TRUE(sum_out[r][i].has_value()) << "r=" << r << " e=" << e;
        EXPECT_EQ(*sum_out[r][i],
                  oracle(ops::Sum<long>{}, kSumValues, all_ranks, {e}, 1));
      }
      if (is_member(counts_members, r)) {
        ASSERT_TRUE(counts_out[r][i].has_value());
        EXPECT_EQ(*counts_out[r][i],
                  oracle(ops::Counts(8), kKeyMod8, all_ranks, {e}, 2));
      } else {
        EXPECT_FALSE(counts_out[r][i].has_value());
      }
      if (is_member(hll_members, r)) {
        ASSERT_TRUE(hll_out[r][i].has_value());
        EXPECT_EQ(*hll_out[r][i],
                  oracle(ops::HyperLogLog<std::uint64_t>(10), kKeys, all_ranks,
                         {e}, 3));
      }
      // Sliding W=3 S=1: emissions start at epoch 3 and cover the last
      // three epochs, evicting through the two-stack path (Min is not
      // invertible).
      if (is_member(min_members, r)) {
        ASSERT_EQ(min_out[r][i].has_value(), e >= 3) << "r=" << r << " e=" << e;
        if (e >= 3) {
          EXPECT_EQ(*min_out[r][i], oracle(ops::Min<int>{}, kMinValues,
                                           all_ranks, {e - 2, e - 1, e}, 4));
        }
      }
    }
  }
}

TEST(Service, DeadShardRetiresOnlyItsStreams) {
  constexpr int kRanks = 4;
  constexpr int kEpochs = 5;
  const std::vector<int> hot_members = {0, 1, 2, 3};   // includes the victim
  const std::vector<int> cold_members = {0, 1, 3};     // survives
  const std::vector<int> survivors = {0, 1, 3};

  mprt::SimConfig sim;
  sim.seed = 11;
  sim.kill_rank = 2;
  // Setup is deterministic: each add_stream's split sends p-1 messages
  // per rank and nothing else in setup sends.  Two streams at p=4 means
  // the victim's 7th send is its first epoch-1 routing send.
  sim.kill_after_sends = 2 * (kRanks - 1);

  std::vector<std::vector<std::optional<long>>> cold_out(kRanks);
  std::vector<int> hot_degraded(kRanks, -1);
  std::vector<int> cold_degraded(kRanks, -1);
  std::vector<std::uint64_t> degraded_streams(kRanks, 0);
  std::vector<std::vector<int>> live(kRanks);

  EXPECT_THROW(
      mprt::run(
          kRanks,
          [&](Comm& comm) {
            svc::Service service(comm);
            auto& hot = service.add_stream("hot", hot_members, ops::Sum<long>{},
                                           kSumValues, tumbling1());
            auto& cold = service.add_stream("cold", cold_members,
                                            ops::Sum<long>{}, kSumValues,
                                            tumbling1());
            for (int e = 1; e <= kEpochs; ++e) {
              hot.stage(load(comm.rank(), e, /*salt=*/1));
              cold.stage(load(comm.rank(), e, /*salt=*/2));
              service.step_epoch();
              cold_out[static_cast<std::size_t>(comm.rank())].push_back(
                  cold.last_window());
            }
            const auto r = static_cast<std::size_t>(comm.rank());
            hot_degraded[r] = hot.degraded() ? 1 : 0;
            cold_degraded[r] = cold.degraded() ? 1 : 0;
            degraded_streams[r] = service.stats().degraded_streams();
            live[r] = service.live_sources();
            EXPECT_EQ(hot.windows_emitted(), 0u) << "rank " << comm.rank();
          },
          mprt::CostModel{}, sim),
      RankKilledError);

  for (const int r : survivors) {
    const auto s = static_cast<std::size_t>(r);
    EXPECT_EQ(hot_degraded[s], 1) << "rank " << r;
    EXPECT_EQ(cold_degraded[s], 0) << "rank " << r;
    EXPECT_EQ(degraded_streams[s], 1u) << "rank " << r;
    EXPECT_EQ(live[s], survivors) << "rank " << r;
    ASSERT_EQ(cold_out[s].size(), static_cast<std::size_t>(kEpochs));
    for (int e = 1; e <= kEpochs; ++e) {
      // The victim died before routing anything, so "cold" epochs carry
      // only the survivors' events.  Epoch 1 may be torn (nullopt) on a
      // rank that observed the loss through "cold" itself; afterwards
      // every epoch must emit the exact survivor-side oracle.
      const auto& got = cold_out[s][static_cast<std::size_t>(e - 1)];
      if (e > 1) {
        ASSERT_TRUE(got.has_value()) << "rank " << r << " e=" << e;
      }
      if (got.has_value()) {
        EXPECT_EQ(*got, oracle(ops::Sum<long>{}, kSumValues, survivors, {e}, 2))
            << "rank " << r << " e=" << e;
      }
    }
  }
}

TEST(Service, DeadIngesterCostsOneTornEpoch) {
  constexpr int kRanks = 4;
  constexpr int kEpochs = 5;
  // The victim shards nothing; it sits in the middle of the source order,
  // so members abandon epoch 1 before draining later sources — whose
  // stale epoch-1 batches must then be discarded by the epoch header.
  const std::vector<int> members = {0, 2, 3};
  const std::vector<int> survivors = {0, 2, 3};

  mprt::SimConfig sim;
  sim.seed = 13;
  sim.kill_rank = 1;
  // One add_stream split (p-1 sends per rank) is all of setup; the next
  // send is the victim's first epoch-1 routing send.
  sim.kill_after_sends = kRanks - 1;

  std::vector<std::vector<std::optional<long>>> out(kRanks);
  std::vector<int> degraded(kRanks, -1);
  std::vector<std::uint64_t> torn(kRanks, 0);
  std::vector<std::uint64_t> degraded_streams(kRanks, 99);

  EXPECT_THROW(
      mprt::run(
          kRanks,
          [&](Comm& comm) {
            svc::Service service(comm);
            auto& s = service.add_stream("s", members, ops::Sum<long>{},
                                         kSumValues, tumbling1());
            for (int e = 1; e <= kEpochs; ++e) {
              s.stage(load(comm.rank(), e, /*salt=*/9));
              service.step_epoch();
              out[static_cast<std::size_t>(comm.rank())].push_back(
                  s.last_window());
            }
            const auto r = static_cast<std::size_t>(comm.rank());
            degraded[r] = s.degraded() ? 1 : 0;
            torn[r] = service.stats().streams().at("s").degraded_epochs;
            degraded_streams[r] = service.stats().degraded_streams();
          },
          mprt::CostModel{}, sim),
      RankKilledError);

  for (const int r : survivors) {
    const auto s = static_cast<std::size_t>(r);
    EXPECT_EQ(degraded[s], 0) << "rank " << r;
    EXPECT_EQ(torn[s], 1u) << "rank " << r;
    EXPECT_EQ(degraded_streams[s], 0u) << "rank " << r;
    EXPECT_FALSE(out[s][0].has_value()) << "rank " << r;  // torn epoch 1
    for (int e = 2; e <= kEpochs; ++e) {
      const auto& got = out[s][static_cast<std::size_t>(e - 1)];
      ASSERT_TRUE(got.has_value()) << "rank " << r << " e=" << e;
      EXPECT_EQ(*got, oracle(ops::Sum<long>{}, kSumValues, survivors, {e}, 9))
          << "rank " << r << " e=" << e;
    }
  }
}

TEST(Service, WarmEpochsDoNotPlanOrAllocate) {
  mprt::run(4, [](Comm& comm) {
    svc::Service service(comm);
    auto& s = service.add_stream("w", std::vector<int>{0, 1, 2, 3},
                                 ops::Counts(8), kKeyMod8, tumbling1());
    auto run_epoch = [&](int e) {
      s.stage(load(comm.rank(), e, /*salt=*/5, /*count=*/64));
      service.step_epoch();
    };
    for (int e = 1; e <= 4; ++e) run_epoch(e);  // warm-up
    const std::uint64_t allocs = comm.payload_allocs();
    const std::uint64_t autotunes = comm.autotune_invocations();
    const std::int64_t tags = comm.collective_tags_consumed();
    for (int e = 5; e <= 24; ++e) run_epoch(e);
    EXPECT_EQ(comm.payload_allocs(), allocs) << "warm epochs heap-allocated";
    EXPECT_EQ(comm.autotune_invocations(), autotunes);
    EXPECT_EQ(comm.collective_tags_consumed(), tags);
  });
}

TEST(Service, PublishSurfacesAggregateUserStats) {
  constexpr int kRanks = 4;
  constexpr int kEpochs = 3;
  constexpr int kEventsPerRank = 16;
  const auto result = mprt::run(kRanks, [&](Comm& comm) {
    svc::Service service(comm);
    auto& s = service.add_stream("pub", std::vector<int>{0, 1, 2, 3},
                                 ops::Sum<long>{}, kSumValues, tumbling1());
    for (int e = 1; e <= kEpochs; ++e) {
      s.stage(load(comm.rank(), e, /*salt=*/6, kEventsPerRank));
      service.step_epoch();
    }
    const std::string json = service.stats_json();
    EXPECT_NE(json.find("\"pub\""), std::string::npos);
    EXPECT_NE(json.find("\"pool_hits\""), std::string::npos);
    service.publish();
  });

  // Every member records each epoch once; every event is folded by
  // exactly one shard, so the summed event total is the global ingest.
  EXPECT_EQ(result.user_stats.at("svc.epochs"),
            static_cast<double>(kRanks * kEpochs));
  EXPECT_EQ(result.user_stats.at("svc.events"),
            static_cast<double>(kRanks * kEpochs * kEventsPerRank));
  EXPECT_EQ(result.user_stats.at("svc.windows"),
            static_cast<double>(kRanks * kEpochs));
  EXPECT_EQ(result.user_stats.at("svc.degraded_streams"), 0.0);
}

TEST(Service, RejectsBadMembers) {
  mprt::run(2, [](Comm& comm) {
    svc::Service service(comm);
    EXPECT_THROW(service.add_stream("bad", std::vector<int>{},
                                    ops::Sum<long>{}, kSumValues),
                 ArgumentError);
    EXPECT_THROW(service.add_stream("bad", std::vector<int>{1, 0},
                                    ops::Sum<long>{}, kSumValues),
                 ArgumentError);
    EXPECT_THROW(service.add_stream("bad", std::vector<int>{0, 7},
                                    ops::Sum<long>{}, kSumValues),
                 ArgumentError);
  });
}

}  // namespace
