// Tests for persistent collectives (coll/persistent.hpp and
// svc/persistent.hpp): a cached plan must execute bit-identically to a
// freshly-planned call — across the operator zoo, all five schedules,
// with and without fault injection — and warm epochs must neither
// autotune, nor consume collective tags, nor allocate payload buffers.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "coll/persistent.hpp"
#include "mprt/runtime.hpp"
#include "rs/ops/ops.hpp"
#include "rs/scan.hpp"
#include "rs/state_exchange.hpp"
#include "svc/persistent.hpp"

namespace {

using namespace rsmpi;
namespace ops = rs::ops;
using mprt::Comm;
using rs::save_op;

const int kRankSweep[] = {2, 3, 5, 8, 16};

/// Pins RSMPI_SCHEDULE for a scope ("" = auto / unset).
class ScheduleEnv {
 public:
  explicit ScheduleEnv(const char* name) {
    if (name != nullptr && *name != '\0') {
      setenv("RSMPI_SCHEDULE", name, 1);
    } else {
      unsetenv("RSMPI_SCHEDULE");
    }
  }
  ~ScheduleEnv() { unsetenv("RSMPI_SCHEDULE"); }
};

const std::vector<const char*> kScheduleSweep = {
    "",  // autotuned
    "two_message", "butterfly", "rabenseifner", "ring", "pipelined"};

// two_message combines commutative states in kAnySource arrival order, so
// two invocations of the SAME schedule can legitimately associate
// floating-point states differently.  Every other schedule receives from
// fixed sources in a fixed order.  (The autotuner may pick two_message,
// so "" is excluded too.)
const std::vector<const char*> kDeterministicOrderSweep = {
    "butterfly", "rabenseifner", "ring", "pipelined"};

/// A benign fault plan: duplicates, delays, reorders, and compute skew —
/// everything the runtime must absorb without changing results.
mprt::SimConfig benign_chaos(std::uint64_t seed) {
  mprt::SimConfig sim;
  sim.seed = seed;
  sim.duplicate_prob = 0.10;
  sim.delay_prob = 0.20;
  sim.max_extra_delay_s = 1e-4;
  sim.reorder_prob = 0.10;
  sim.max_compute_skew_s = 1e-5;
  return sim;
}

/// For every rank count and schedule, with and without chaos: the planned
/// executor's state must equal the fresh dispatch's, byte for byte.
template <typename Op, typename Fill>
void planned_matches_fresh(const Op& prototype, Fill fill,
                           const std::vector<const char*>& schedules =
                               kScheduleSweep) {
  for (const char* schedule : schedules) {
    ScheduleEnv env(schedule);
    for (const int p : kRankSweep) {
      for (const bool chaos : {false, true}) {
        const mprt::SimConfig sim =
            chaos ? benign_chaos(0x5eedULL + static_cast<std::uint64_t>(p))
                  : mprt::SimConfig{};
        mprt::run(
            p,
            [&](Comm& comm) {
              Op mine = prototype;
              fill(mine, comm.rank());

              Op fresh = mine;
              rs::detail::state_allreduce(comm, fresh, prototype);

              auto plan = coll::plan_state_allreduce(comm, prototype);
              Op planned = mine;
              coll::execute_planned_allreduce(comm, planned, prototype, plan);

              EXPECT_EQ(save_op(fresh), save_op(planned))
                  << "schedule=" << schedule << " p=" << p
                  << " chaos=" << chaos;
              EXPECT_EQ(plan.epochs, 1u);
            },
            mprt::CostModel{}, sim);
      }
    }
  }
}

TEST(PersistentPlan, MatchesFreshSum) {
  planned_matches_fresh(ops::Sum<long>{}, [](ops::Sum<long>& op, int r) {
    for (int i = 0; i < 32; ++i) op.accum(r * 131 + i);
  });
}

TEST(PersistentPlan, MatchesFreshCounts) {
  planned_matches_fresh(ops::Counts(8), [](ops::Counts& op, int r) {
    for (int i = 0; i < 64; ++i) op.accum((r * 7 + i * 13) % 8);
  });
}

TEST(PersistentPlan, MatchesFreshHistogram) {
  const ops::Histogram<double> proto({0.0, 1.0, 2.0, 4.0, 8.0});
  planned_matches_fresh(proto, [](ops::Histogram<double>& op, int r) {
    for (int i = 0; i < 48; ++i) op.accum(0.37 * ((r * 11 + i * 29) % 24));
  });
}

TEST(PersistentPlan, MatchesFreshMeanVar) {
  // Floating-point: bit-identity holds on every deterministic-order
  // schedule, because the plan replays the fresh path's exact combine
  // tree, rounding included.
  planned_matches_fresh(
      ops::MeanVar{},
      [](ops::MeanVar& op, int r) {
        for (int i = 0; i < 40; ++i) op.accum(0.1 * r + 0.01 * i);
      },
      kDeterministicOrderSweep);
}

TEST(PersistentPlan, MeanVarTwoMessageAgreesUpToReassociation) {
  // Arrival-order combining: the planned and fresh results may associate
  // differently, but must agree to rounding error.
  ScheduleEnv env("two_message");
  mprt::run(8, [](Comm& comm) {
    ops::MeanVar mine;
    for (int i = 0; i < 40; ++i) mine.accum(0.1 * comm.rank() + 0.01 * i);

    ops::MeanVar fresh = mine;
    rs::detail::state_allreduce(comm, fresh, ops::MeanVar{});

    auto plan = coll::plan_state_allreduce(comm, ops::MeanVar{});
    ops::MeanVar planned = mine;
    coll::execute_planned_allreduce(comm, planned, ops::MeanVar{}, plan);

    const auto a = fresh.gen();
    const auto b = planned.gen();
    EXPECT_EQ(a.count, b.count);
    EXPECT_NEAR(a.mean, b.mean, 1e-12);
    EXPECT_NEAR(a.variance, b.variance, 1e-9);
  });
}

TEST(PersistentPlan, MatchesFreshHyperLogLog) {
  const ops::HyperLogLog<std::uint64_t> proto(10);
  planned_matches_fresh(proto,
                        [](ops::HyperLogLog<std::uint64_t>& op, int r) {
                          for (int i = 0; i < 100; ++i) {
                            op.accum(static_cast<std::uint64_t>(r) * 1000 + i);
                          }
                        });
}

TEST(PersistentPlan, MatchesFreshNonCommutativeConcat) {
  // Non-commutative: every schedule name degrades to the order-preserving
  // reduce+bcast, in the plan exactly as in the fresh dispatch.
  planned_matches_fresh(ops::Concat{}, [](ops::Concat& op, int r) {
    for (int i = 0; i < 4; ++i) op.accum(static_cast<char>('a' + (r + i) % 26));
  });
}

// --- warm-path guarantees ---------------------------------------------------

TEST(PersistentPlan, WarmEpochsDoNotPlanOrAllocate) {
  mprt::run(8, [](Comm& comm) {
    const ops::Histogram<double> proto({0.0, 1.0, 2.0, 4.0, 8.0});
    svc::PersistentReduce<ops::Histogram<double>> handle(comm, proto);
    // Partitionable + commutative + no env override: planning paid exactly
    // one autotuner argmin.
    EXPECT_EQ(comm.autotune_invocations(), 1u);

    std::vector<double> batch(64);
    auto run_epoch = [&](int e) {
      for (std::size_t i = 0; i < batch.size(); ++i) {
        batch[i] = 0.13 * static_cast<double>((e * 31 + comm.rank() * 7 +
                                               static_cast<int>(i)) %
                                              64);
      }
      return handle.execute_state(batch);
    };

    for (int e = 0; e < 3; ++e) run_epoch(e);  // warm-up
    const std::uint64_t allocs = comm.payload_allocs();
    const std::uint64_t autotunes = comm.autotune_invocations();
    const std::int64_t tags = comm.collective_tags_consumed();
    for (int e = 3; e < 20; ++e) run_epoch(e);
    EXPECT_EQ(comm.payload_allocs(), allocs) << "warm epochs heap-allocated";
    EXPECT_EQ(comm.autotune_invocations(), autotunes)
        << "warm epochs re-planned";
    EXPECT_EQ(comm.collective_tags_consumed(), tags)
        << "warm epochs walked the tag window";
    EXPECT_EQ(handle.plan().epochs, 20u);
  });
}

TEST(PersistentPlan, RunResultCarriesPlanCounters) {
  const auto result = mprt::run(4, [](Comm& comm) {
    svc::PersistentReduce<ops::Sum<long>> handle(comm, ops::Sum<long>{});
    const std::vector<long> batch = {1, 2, 3};
    for (int e = 0; e < 5; ++e) (void)handle.execute_state(batch);
  });
  // One autotuner argmin per rank at plan time, none across the five warm
  // epochs — RunResult sums the per-rank counters.
  EXPECT_EQ(result.autotune_invocations, 4u);
}

// --- persistent scans -------------------------------------------------------

TEST(PersistentScan, MatchesFreshScan) {
  for (const int p : kRankSweep) {
    mprt::run(p, [&](Comm& comm) {
      std::vector<int> mine;
      for (int i = 0; i < 12; ++i) mine.push_back((comm.rank() * 5 + i) % 8);

      const auto fresh = rs::scan(comm, mine, ops::Counts(8));
      svc::PersistentScan<ops::Counts> handle(comm, ops::Counts(8));
      const auto planned = handle.execute(mine);
      EXPECT_EQ(fresh, planned) << "p=" << p;

      const auto fresh_ex =
          rs::scan(comm, mine, ops::Counts(8), rs::ScanKind::kExclusive);
      const auto planned_ex = handle.execute(mine, rs::ScanKind::kExclusive);
      EXPECT_EQ(fresh_ex, planned_ex) << "p=" << p;
    });
  }
}

TEST(PersistentScan, WarmEpochsHoldTagsFlat) {
  mprt::run(6, [](Comm& comm) {
    svc::PersistentScan<ops::Sum<long>> handle(comm, ops::Sum<long>{});
    std::vector<long> mine = {1, 2, 3, 4};
    (void)handle.execute(mine);
    const std::int64_t tags = comm.collective_tags_consumed();
    for (int e = 0; e < 50; ++e) (void)handle.execute(mine);
    EXPECT_EQ(comm.collective_tags_consumed(), tags);
    EXPECT_EQ(handle.plan().epochs, 51u);
  });
}

}  // namespace
