// Window-semantics tests (svc/window.hpp): tumbling and sliding windows
// over any operator must be bit-identical to a serial oracle that
// re-aggregates the last W per-epoch global states from scratch — via the
// uncombine fast path for invertible ops and the two-stack evict for
// non-invertible ones (Min, Max, HyperLogLog).
#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "mprt/runtime.hpp"
#include "rs/op_concepts.hpp"
#include "rs/ops/ops.hpp"
#include "rs/state_exchange.hpp"
#include "svc/window.hpp"

namespace {

using namespace rsmpi;
namespace ops = rs::ops;
using mprt::Comm;
using rs::save_op;

/// Serial oracle: keeps every merged per-epoch state and recomputes each
/// window as a from-scratch left fold over the last W of them.
template <typename Op>
class WindowOracle {
 public:
  WindowOracle(Op prototype, svc::WindowConfig cfg)
      : prototype_(std::move(prototype)),
        window_(cfg.window_epochs),
        slide_(cfg.slide_epochs == 0 ? cfg.window_epochs : cfg.slide_epochs) {}

  std::optional<Op> push(Op merged_epoch_state) {
    history_.push_back(std::move(merged_epoch_state));
    epochs_ += 1;
    if (epochs_ < window_ || (epochs_ - window_) % slide_ != 0) {
      return std::nullopt;
    }
    Op agg = prototype_;
    for (std::size_t i = history_.size() - window_; i < history_.size(); ++i) {
      agg.combine(history_[i]);
    }
    return agg;
  }

 private:
  Op prototype_;
  std::size_t window_;
  std::size_t slide_;
  std::size_t epochs_ = 0;
  std::vector<Op> history_;
};

/// Runs `epochs` epochs through both the stream and the oracle at every
/// rank count, comparing emitted windows byte-for-byte via save_op.
template <typename Op, typename Fill>
void stream_matches_oracle(const Op& prototype, svc::WindowConfig cfg,
                           int epochs, Fill fill, bool expect_inversion) {
  for (const int p : {2, 3, 5, 8}) {
    mprt::run(p, [&](Comm& comm) {
      svc::WindowedStream<Op> stream(comm, prototype, cfg);
      EXPECT_EQ(stream.uses_inversion(), expect_inversion);
      WindowOracle<Op> oracle(prototype, cfg);
      int emitted = 0;

      for (int e = 0; e < epochs; ++e) {
        Op mine = prototype;
        fill(mine, comm.rank(), e);

        // The oracle sees the same merged global state the stream merges.
        Op merged = mine;
        rs::detail::state_allreduce(comm, merged, prototype);
        const auto want = oracle.push(std::move(merged));

        const auto got = stream.push_state(std::move(mine));
        ASSERT_EQ(got.has_value(), want.has_value())
            << "p=" << p << " epoch=" << e;
        if (got) {
          EXPECT_EQ(*got, rs::red_result(*want)) << "p=" << p << " epoch=" << e;
          emitted += 1;
        }
      }
      EXPECT_EQ(stream.windows_emitted(), static_cast<std::size_t>(emitted));
      EXPECT_GT(emitted, 0) << "test never exercised an emission";
    });
  }
}

svc::WindowConfig tumbling(std::size_t w) {
  svc::WindowConfig cfg;
  cfg.window_epochs = w;
  cfg.slide_epochs = 0;
  return cfg;
}

svc::WindowConfig sliding(std::size_t w, std::size_t s,
                          bool allow_inversion = true) {
  svc::WindowConfig cfg;
  cfg.window_epochs = w;
  cfg.slide_epochs = s;
  cfg.allow_inversion = allow_inversion;
  return cfg;
}

// --- invertible fast path ---------------------------------------------------

TEST(Window, TumblingSum) {
  stream_matches_oracle(
      ops::Sum<long>{}, tumbling(4), 13,
      [](ops::Sum<long>& op, int r, int e) {
        for (int i = 0; i < 8; ++i) op.accum(r * 100 + e * 10 + i);
      },
      /*expect_inversion=*/false);  // tumbling never needs to evict
}

TEST(Window, SlidingSumUsesInversion) {
  static_assert(rs::InvertibleOp<ops::Sum<long>>);
  stream_matches_oracle(
      ops::Sum<long>{}, sliding(4, 1), 12,
      [](ops::Sum<long>& op, int r, int e) {
        for (int i = 0; i < 8; ++i) op.accum(r * 100 + e * 10 + i);
      },
      /*expect_inversion=*/true);
}

TEST(Window, SlidingCountsStride2) {
  stream_matches_oracle(
      ops::Counts(8), sliding(3, 2), 11,
      [](ops::Counts& op, int r, int e) {
        for (int i = 0; i < 16; ++i) op.accum((r * 7 + e * 3 + i) % 8);
      },
      /*expect_inversion=*/true);
}

TEST(Window, SlidingMeanVarInvertible) {
  stream_matches_oracle(
      ops::MeanVar{}, sliding(4, 1), 10,
      [](ops::MeanVar& op, int r, int e) {
        for (int i = 0; i < 6; ++i) op.accum(0.5 * r + 0.25 * e + 0.125 * i);
      },
      /*expect_inversion=*/true);
}

// --- two-stack path (non-invertible, or inversion disabled) -----------------

TEST(Window, SlidingMinTwoStack) {
  static_assert(!rs::InvertibleOp<ops::Min<int>>);
  stream_matches_oracle(
      ops::Min<int>{}, sliding(4, 1), 12,
      [](ops::Min<int>& op, int r, int e) {
        // Values drift upward so evicted epochs really did hold the minimum.
        for (int i = 0; i < 5; ++i) op.accum(e * 100 + ((r * 13 + i * 7) % 50));
      },
      /*expect_inversion=*/false);
}

TEST(Window, SlidingMaxTwoStack) {
  stream_matches_oracle(
      ops::Max<int>{}, sliding(3, 1), 10,
      [](ops::Max<int>& op, int r, int e) {
        for (int i = 0; i < 5; ++i) {
          op.accum(1000 - e * 100 + ((r * 17 + i * 11) % 50));
        }
      },
      /*expect_inversion=*/false);
}

TEST(Window, SlidingHyperLogLogTwoStack) {
  static_assert(!rs::InvertibleOp<ops::HyperLogLog<std::uint64_t>>);
  stream_matches_oracle(
      ops::HyperLogLog<std::uint64_t>(10), sliding(4, 2), 12,
      [](ops::HyperLogLog<std::uint64_t>& op, int r, int e) {
        for (int i = 0; i < 64; ++i) {
          op.accum(static_cast<std::uint64_t>(e) * 10000 + r * 100 + i);
        }
      },
      /*expect_inversion=*/false);
}

TEST(Window, ForcedTwoStackMatchesInversion) {
  // Same epochs through both evict strategies: identical emissions.
  mprt::run(4, [](Comm& comm) {
    const auto cfg_inv = sliding(4, 1, /*allow_inversion=*/true);
    const auto cfg_two = sliding(4, 1, /*allow_inversion=*/false);
    svc::WindowedStream<ops::Counts> inv(comm, ops::Counts(16), cfg_inv);
    svc::WindowedStream<ops::Counts> two(comm, ops::Counts(16), cfg_two);
    EXPECT_TRUE(inv.uses_inversion());
    EXPECT_FALSE(two.uses_inversion());

    for (int e = 0; e < 10; ++e) {
      ops::Counts mine(16);
      for (int i = 0; i < 24; ++i) mine.accum((comm.rank() * 5 + e + i) % 16);
      ops::Counts copy = mine;
      const auto a = inv.push_state(std::move(mine));
      const auto b = two.push_state(std::move(copy));
      ASSERT_EQ(a.has_value(), b.has_value()) << "epoch=" << e;
      if (a) {
        EXPECT_EQ(*a, *b) << "epoch=" << e;
      }
    }
    EXPECT_EQ(inv.windows_emitted(), 7u);
    EXPECT_EQ(two.windows_emitted(), 7u);
  });
}

TEST(Window, PushEpochAccumulatesRawInput) {
  // push_epoch folds raw elements through accum before merging; must agree
  // with pre-accumulated push_state.
  mprt::run(3, [](Comm& comm) {
    svc::WindowedStream<ops::Sum<long>> via_epoch(comm, ops::Sum<long>{},
                                                  tumbling(2));
    svc::WindowedStream<ops::Sum<long>> via_state(comm, ops::Sum<long>{},
                                                  tumbling(2));
    for (int e = 0; e < 6; ++e) {
      std::vector<long> batch;
      for (int i = 0; i < 4; ++i) batch.push_back(comm.rank() * 10 + e + i);
      ops::Sum<long> state;
      for (long x : batch) state.accum(x);

      const auto a = via_epoch.push_epoch(batch);
      const auto b = via_state.push_state(std::move(state));
      ASSERT_EQ(a.has_value(), b.has_value());
      if (a) {
        EXPECT_EQ(*a, *b);
      }
    }
  });
}

TEST(Window, RejectsZeroWindow) {
  mprt::run(2, [](Comm& comm) {
    svc::WindowConfig cfg;
    cfg.window_epochs = 0;
    EXPECT_THROW(
        (svc::WindowedStream<ops::Sum<long>>(comm, ops::Sum<long>{}, cfg)),
        ArgumentError);
  });
}

}  // namespace
