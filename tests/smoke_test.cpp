// End-to-end smoke test: the quickstart flow on a few ranks.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "rs/rsmpi.hpp"

namespace {

using namespace rsmpi;

TEST(Smoke, GlobalSumAcrossRanks) {
  constexpr int kRanks = 4;
  constexpr int kPerRank = 100;
  mprt::run(kRanks, [&](mprt::Comm& comm) {
    std::vector<long> mine(kPerRank);
    std::iota(mine.begin(), mine.end(),
              static_cast<long>(comm.rank()) * kPerRank);
    const long total = rs::reduce(comm, mine, rs::ops::Sum<long>{});
    const long n = kRanks * kPerRank;
    EXPECT_EQ(total, n * (n - 1) / 2);
  });
}

TEST(Smoke, MinKMatchesSerial) {
  constexpr int kRanks = 3;
  mprt::run(kRanks, [&](mprt::Comm& comm) {
    std::vector<int> mine;
    for (int i = 0; i < 50; ++i) {
      mine.push_back((comm.rank() * 50 + i) * 7919 % 1000);
    }
    const auto mins = rs::reduce(comm, mine, rs::ops::MinK<int>(5));
    ASSERT_EQ(mins.size(), 5u);
    EXPECT_TRUE(std::is_sorted(mins.begin(), mins.end()));
  });
}

TEST(Smoke, CountsScanPaperExample) {
  // The paper's §3.1.3 particle example, run on one rank: reducing
  // [6,7,6,3,8,2,8,4,8,3] over 8 octants.
  const std::vector<int> octants = {6, 7, 6, 3, 8, 2, 8, 4, 8, 3};
  std::vector<int> zero_based;
  for (int x : octants) zero_based.push_back(x - 1);

  const auto counts = rs::serial::reduce(zero_based, rs::ops::Counts(8));
  const std::vector<long> want_counts = {0, 1, 2, 1, 0, 2, 1, 3};
  EXPECT_EQ(counts, want_counts);

  const auto ranks = rs::serial::scan(zero_based, rs::ops::Counts(8));
  const std::vector<long> want_ranks = {1, 1, 2, 1, 1, 1, 2, 1, 3, 2};
  EXPECT_EQ(ranks, want_ranks);
}

}  // namespace
