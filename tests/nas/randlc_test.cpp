// Validation of the NPB random number generator: the double-splitting
// arithmetic must agree bit-for-bit with an exact 128-bit integer model of
// x := a*x mod 2^46, and the seed-jump must commute with stepping.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "nas/randlc.hpp"

namespace {

using namespace rsmpi::nas;

constexpr std::uint64_t kMod46 = 1ULL << 46;

/// Exact integer oracle for one LCG step.
std::uint64_t lcg_step(std::uint64_t x, std::uint64_t a) {
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(a) * x) % kMod46);
}

TEST(Randlc, MatchesIntegerOracle) {
  double x = kRandlcSeed;
  std::uint64_t xi = static_cast<std::uint64_t>(kRandlcSeed);
  const auto ai = static_cast<std::uint64_t>(kRandlcA);
  for (int i = 0; i < 10'000; ++i) {
    const double r = randlc(x, kRandlcA);
    xi = lcg_step(xi, ai);
    ASSERT_EQ(static_cast<std::uint64_t>(x), xi) << "step " << i;
    ASSERT_DOUBLE_EQ(r, static_cast<double>(xi) /
                            static_cast<double>(kMod46));
  }
}

TEST(Randlc, OutputsInUnitInterval) {
  double x = kRandlcSeed;
  for (int i = 0; i < 1000; ++i) {
    const double r = randlc(x, kRandlcA);
    EXPECT_GT(r, 0.0);
    EXPECT_LT(r, 1.0);
  }
}

TEST(Randlc, RoughlyUniform) {
  double x = kRandlcSeed;
  int below_half = 0;
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i) {
    if (randlc(x, kRandlcA) < 0.5) ++below_half;
  }
  EXPECT_NEAR(static_cast<double>(below_half) / kN, 0.5, 0.01);
}

TEST(Vranlc, MatchesScalarDraws) {
  double xs = kRandlcSeed;
  std::vector<double> scalar(64);
  for (auto& v : scalar) v = randlc(xs, kRandlcA);

  double xv = kRandlcSeed;
  std::vector<double> vec(64);
  vranlc(xv, kRandlcA, vec);

  EXPECT_EQ(vec, scalar);
  EXPECT_EQ(xv, xs);  // state advances identically
}

TEST(RandlcPow, MatchesRepeatedSquaringOracle) {
  const auto ai = static_cast<std::uint64_t>(kRandlcA);
  std::uint64_t want = 1;
  for (std::uint64_t k = 0; k <= 100; ++k) {
    EXPECT_EQ(static_cast<std::uint64_t>(randlc_pow(kRandlcA, k)), want)
        << "k=" << k;
    want = lcg_step(want, ai);
  }
}

TEST(RandlcJump, JumpEqualsStepping) {
  for (const std::uint64_t k : {0ULL, 1ULL, 2ULL, 17ULL, 1000ULL, 65536ULL}) {
    double stepped = kRandlcSeed;
    for (std::uint64_t i = 0; i < k; ++i) (void)randlc(stepped, kRandlcA);
    const double jumped = randlc_jump(kRandlcSeed, kRandlcA, k);
    EXPECT_EQ(jumped, stepped) << "k=" << k;
  }
}

TEST(RandlcJump, SubstreamsTileTheSequence) {
  // Jumping to offset b then drawing must reproduce draws b.. of the
  // un-jumped stream — the property IS key generation relies on.
  double x = kRandlcSeed;
  std::vector<double> stream(256);
  for (auto& v : stream) v = randlc(x, kRandlcA);

  for (const std::size_t offset : {0u, 1u, 100u, 255u}) {
    double y = randlc_jump(kRandlcSeed, kRandlcA, offset);
    const double r = randlc(y, kRandlcA);
    EXPECT_EQ(r, stream[offset]) << "offset=" << offset;
  }
}

}  // namespace
