// NAS IS pipeline tests: key generation determinism, bucket-sort
// correctness, and agreement of the three verification implementations —
// including fault injection, which all three must detect identically.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "coll/gather.hpp"
#include "mprt/runtime.hpp"
#include "nas/is.hpp"

namespace {

using namespace rsmpi;
using nas::IsParams;
using nas::Key;

constexpr IsParams kTiny{1 << 12, 1 << 8};

class IsSweep : public ::testing::TestWithParam<int> {};

TEST_P(IsSweep, KeySequenceIndependentOfRankCount) {
  // The conceptual global key array must be identical for every p.
  std::vector<Key> reference;
  mprt::run(1, [&](mprt::Comm& comm) {
    reference = nas::is_generate_keys(comm, kTiny);
  });
  const int p = GetParam();
  mprt::run(p, [&](mprt::Comm& comm) {
    const auto mine = nas::is_generate_keys(comm, kTiny);
    const auto all = coll::gather<Key>(comm, 0, mine);
    if (comm.rank() == 0) {
      EXPECT_EQ(all, reference);
    }
  });
}

TEST_P(IsSweep, KeysAreInRange) {
  const int p = GetParam();
  mprt::run(p, [&](mprt::Comm& comm) {
    for (const Key k : nas::is_generate_keys(comm, kTiny)) {
      EXPECT_GE(k, 0);
      EXPECT_LT(k, kTiny.max_key);
    }
  });
}

TEST_P(IsSweep, BucketSortProducesGlobalSortedPermutation) {
  const int p = GetParam();
  mprt::run(p, [&](mprt::Comm& comm) {
    auto keys = nas::is_generate_keys(comm, kTiny);
    auto original = keys;
    auto sorted = nas::is_bucket_sort(comm, std::move(keys), kTiny);

    // Locally ascending.
    EXPECT_TRUE(std::is_sorted(sorted.begin(), sorted.end()));

    const auto all_sorted = coll::gather<Key>(comm, 0, sorted);
    const auto all_original = coll::gather<Key>(comm, 0, original);
    if (comm.rank() == 0) {
      // Globally ascending and a permutation of the input.
      EXPECT_TRUE(std::is_sorted(all_sorted.begin(), all_sorted.end()));
      auto want = all_original;
      std::sort(want.begin(), want.end());
      EXPECT_EQ(all_sorted, want);
    }
  });
}

TEST_P(IsSweep, AllThreeVerifiersAcceptSortedData) {
  const int p = GetParam();
  mprt::run(p, [&](mprt::Comm& comm) {
    auto keys = nas::is_generate_keys(comm, kTiny);
    const auto sorted = nas::is_bucket_sort(comm, std::move(keys), kTiny);
    EXPECT_TRUE(nas::is_verify_nas_mpi(comm, sorted));
    EXPECT_TRUE(nas::is_verify_opt_mpi(comm, sorted));
    EXPECT_TRUE(nas::is_verify_rsmpi(comm, sorted));
  });
}

TEST_P(IsSweep, AllThreeVerifiersRejectLocalInversion) {
  const int p = GetParam();
  mprt::run(p, [&](mprt::Comm& comm) {
    auto keys = nas::is_generate_keys(comm, kTiny);
    auto sorted = nas::is_bucket_sort(comm, std::move(keys), kTiny);
    // Inject an inversion in the middle of the last rank's block.
    if (comm.rank() == comm.size() - 1 && sorted.size() >= 2) {
      std::swap(sorted[sorted.size() / 2], sorted[sorted.size() / 2 - 1]);
      // Guarantee a strict descent even if the swapped keys were equal.
      sorted[sorted.size() / 2 - 1] += 1;
    }
    EXPECT_FALSE(nas::is_verify_nas_mpi(comm, sorted));
    EXPECT_FALSE(nas::is_verify_opt_mpi(comm, sorted));
    EXPECT_FALSE(nas::is_verify_rsmpi(comm, sorted));
  });
}

TEST_P(IsSweep, AllThreeVerifiersRejectBoundaryInversion) {
  const int p = GetParam();
  if (p < 2) GTEST_SKIP() << "needs a rank boundary";
  mprt::run(p, [&](mprt::Comm& comm) {
    auto keys = nas::is_generate_keys(comm, kTiny);
    auto sorted = nas::is_bucket_sort(comm, std::move(keys), kTiny);
    // Raise rank 0's last key above everything: only the boundary check
    // between ranks can see this.
    if (comm.rank() == 0 && !sorted.empty()) {
      sorted.back() = static_cast<Key>(kTiny.max_key + 100);
    }
    EXPECT_FALSE(nas::is_verify_nas_mpi(comm, sorted));
    EXPECT_FALSE(nas::is_verify_opt_mpi(comm, sorted));
    EXPECT_FALSE(nas::is_verify_rsmpi(comm, sorted));
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, IsSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 8));

class IsRankSweep : public ::testing::TestWithParam<int> {};

TEST_P(IsRankSweep, RanksCountSmallerKeys) {
  const int p = GetParam();
  constexpr IsParams params{1 << 10, 1 << 7};
  // Oracle: global rank of value v = #keys < v.
  std::vector<Key> all;
  mprt::run(1, [&](mprt::Comm& comm) {
    all = nas::is_generate_keys(comm, params);
  });
  std::vector<std::int64_t> smaller(static_cast<std::size_t>(params.max_key),
                                    0);
  for (const Key k : all) smaller[static_cast<std::size_t>(k)] += 1;
  std::int64_t running = 0;
  for (auto& s : smaller) {
    const auto c = s;
    s = running;
    running += c;
  }

  mprt::run(p, [&](mprt::Comm& comm) {
    const auto mine = nas::is_generate_keys(comm, params);
    const auto ranks = nas::is_rank_keys(comm, mine, params);
    ASSERT_EQ(ranks.size(), mine.size());
    for (std::size_t i = 0; i < mine.size(); ++i) {
      EXPECT_EQ(ranks[i], smaller[static_cast<std::size_t>(mine[i])])
          << "key " << mine[i];
    }
  });
}

TEST_P(IsRankSweep, RankOrderMatchesSortOrder) {
  // Stable property: sorting keys by (rank, value) reproduces the sorted
  // permutation — ranks are consistent with the bucket sort's output.
  const int p = GetParam();
  constexpr IsParams params{1 << 10, 1 << 7};
  mprt::run(p, [&](mprt::Comm& comm) {
    auto keys = nas::is_generate_keys(comm, params);
    const auto ranks = nas::is_rank_keys(comm, keys, params);
    for (std::size_t i = 0; i < keys.size(); ++i) {
      for (std::size_t j = i + 1; j < std::min(keys.size(), i + 4); ++j) {
        if (keys[i] < keys[j]) {
          EXPECT_LT(ranks[i], ranks[j]);
        }
        if (keys[i] == keys[j]) {
          EXPECT_EQ(ranks[i], ranks[j]);
        }
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, IsRankSweep,
                         ::testing::Values(1, 2, 3, 5, 8));

TEST(Is, VerifiersHandleEmptyRanks) {
  // More ranks than distinct buckets with keys: some ranks may end up
  // empty after the bucket sort of a tiny array.
  mprt::run(8, [](mprt::Comm& comm) {
    std::vector<Key> mine;
    if (comm.rank() == 3) mine = {1, 2, 3};
    if (comm.rank() == 5) mine = {4, 5};
    EXPECT_TRUE(nas::is_verify_nas_mpi(comm, mine));
    EXPECT_TRUE(nas::is_verify_opt_mpi(comm, mine));
    EXPECT_TRUE(nas::is_verify_rsmpi(comm, mine));
  });
}

TEST(Is, VerifiersCatchInversionAcrossEmptyRank) {
  // Rank 3 holds [10], rank 5 holds [4]; ranks in between are empty.  The
  // descent 10 > 4 spans an empty rank and must still be detected.
  mprt::run(8, [](mprt::Comm& comm) {
    std::vector<Key> mine;
    if (comm.rank() == 3) mine = {10};
    if (comm.rank() == 5) mine = {4};
    EXPECT_FALSE(nas::is_verify_rsmpi(comm, mine));
    EXPECT_FALSE(nas::is_verify_nas_mpi(comm, mine));
    EXPECT_FALSE(nas::is_verify_opt_mpi(comm, mine));
  });
}

}  // namespace
