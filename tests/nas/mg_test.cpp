// NAS MG ZRAN3 tests: grid-fill determinism across rank counts, agreement
// of the 40-reduction baseline with the single-reduction global-view
// formulation, both validated against a sort oracle, and the final charge
// application.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "coll/gather.hpp"
#include "coll/local_reduce.hpp"
#include "mprt/runtime.hpp"
#include "nas/mg.hpp"

namespace {

using namespace rsmpi;
using nas::MgParams;

constexpr MgParams kTinyGrid{16, 16, 16};

/// Gathers the distributed grid to rank 0 in z order.
std::vector<double> gather_grid(mprt::Comm& comm, const nas::MgGrid& grid) {
  return coll::gather<double>(comm, 0, grid.values);
}

class MgSweep : public ::testing::TestWithParam<int> {};

TEST_P(MgSweep, GridFillIndependentOfRankCount) {
  std::vector<double> reference;
  mprt::run(1, [&](mprt::Comm& comm) {
    reference = nas::mg_fill_grid(comm, kTinyGrid).values;
  });
  ASSERT_EQ(reference.size(), 16u * 16 * 16);

  const int p = GetParam();
  mprt::run(p, [&](mprt::Comm& comm) {
    const auto grid = nas::mg_fill_grid(comm, kTinyGrid);
    const auto all = gather_grid(comm, grid);
    if (comm.rank() == 0) {
      EXPECT_EQ(all, reference);
    }
  });
}

TEST_P(MgSweep, SlabsPartitionZPlanes) {
  const int p = GetParam();
  mprt::run(p, [&](mprt::Comm& comm) {
    const auto grid = nas::mg_fill_grid(comm, kTinyGrid);
    const int total_z = coll::local_allreduce_value(
        comm, grid.local_nz, coll::Sum<int>{});
    EXPECT_EQ(total_z, kTinyGrid.nz);
    EXPECT_EQ(grid.values.size(),
              static_cast<std::size_t>(grid.local_nz) * 16 * 16);
  });
}

TEST_P(MgSweep, BaselineAndRsmpiAgree) {
  const int p = GetParam();
  mprt::run(p, [&](mprt::Comm& comm) {
    const auto grid = nas::mg_fill_grid(comm, kTinyGrid);
    const auto base = nas::mg_zran3_baseline(comm, grid, 10);
    const auto rsmpi_result = nas::mg_zran3_rsmpi(comm, grid, 10);
    EXPECT_EQ(base.positive, rsmpi_result.positive);
    EXPECT_EQ(base.negative, rsmpi_result.negative);
  });
}

TEST_P(MgSweep, ChargesMatchSortOracle) {
  const int p = GetParam();
  // Serial oracle: positions of the ten largest/smallest values.
  std::vector<double> field;
  mprt::run(1, [&](mprt::Comm& comm) {
    field = nas::mg_fill_grid(comm, kTinyGrid).values;
  });
  std::vector<std::pair<double, std::int64_t>> indexed;
  for (std::size_t i = 0; i < field.size(); ++i) {
    indexed.push_back({field[i], static_cast<std::int64_t>(i)});
  }
  auto by_value = indexed;
  std::sort(by_value.begin(), by_value.end());
  std::vector<std::int64_t> want_neg, want_pos;
  for (int i = 0; i < 10; ++i) {
    want_neg.push_back(by_value[static_cast<std::size_t>(i)].second);
    want_pos.push_back(
        by_value[by_value.size() - 1 - static_cast<std::size_t>(i)].second);
  }

  mprt::run(p, [&](mprt::Comm& comm) {
    const auto grid = nas::mg_fill_grid(comm, kTinyGrid);
    const auto charges = nas::mg_zran3_rsmpi(comm, grid, 10);
    EXPECT_EQ(charges.positive, want_pos);
    EXPECT_EQ(charges.negative, want_neg);
  });
}

TEST_P(MgSweep, ApplyChargesWritesExactlyTwentyNonzeros) {
  const int p = GetParam();
  mprt::run(p, [&](mprt::Comm& comm) {
    auto grid = nas::mg_fill_grid(comm, kTinyGrid);
    const auto charges = nas::mg_zran3_rsmpi(comm, grid, 10);
    const int local = nas::mg_apply_charges(grid, charges);
    const int total =
        coll::local_allreduce_value(comm, local, coll::Sum<int>{});
    EXPECT_EQ(total, 20);

    // The grid now holds only -1, 0, +1, with global sums 10 and -10.
    double pos_sum = 0, neg_sum = 0;
    for (double v : grid.values) {
      EXPECT_TRUE(v == 0.0 || v == 1.0 || v == -1.0);
      if (v > 0) pos_sum += v;
      if (v < 0) neg_sum += v;
    }
    EXPECT_EQ(coll::local_allreduce_value(comm, pos_sum, coll::Sum<double>{}),
              10.0);
    EXPECT_EQ(coll::local_allreduce_value(comm, neg_sum, coll::Sum<double>{}),
              -10.0);
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, MgSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 16));

TEST(Mg, GlobalIndexRoundTrip) {
  nas::MgGrid grid;
  grid.nx = 4;
  grid.ny = 3;
  grid.nz = 8;
  grid.z0 = 2;
  grid.local_nz = 3;
  EXPECT_EQ(grid.global_index(0, 0, 0), 2 * 12);
  EXPECT_EQ(grid.global_index(1, 2, 1), (3 * 3 + 2) * 4 + 1);
  EXPECT_EQ(grid.local_index(1, 2, 1), (1u * 3 + 2) * 4 + 1);
}

TEST(Mg, BaselineHandlesMoreRanksThanCandidates) {
  // A grid so small that some ranks own no z-planes at all.
  mprt::run(8, [](mprt::Comm& comm) {
    const MgParams tiny{4, 4, 4};  // 4 z-planes over 8 ranks
    const auto grid = nas::mg_fill_grid(comm, tiny);
    const auto base = nas::mg_zran3_baseline(comm, grid, 10);
    const auto rsmpi_result = nas::mg_zran3_rsmpi(comm, grid, 10);
    EXPECT_EQ(base.positive, rsmpi_result.positive);
    EXPECT_EQ(base.negative, rsmpi_result.negative);
  });
}

}  // namespace
