// Tests for the LogGP cost model and virtual-clock plumbing.
//
// Determinism matters here: with compute_scale = 0 the virtual time of an
// execution is a pure function of its message pattern, so tests can state
// exact expected makespans.
#include <gtest/gtest.h>

#include "mprt/comm.hpp"
#include "mprt/cost_model.hpp"
#include "mprt/runtime.hpp"

namespace {

using namespace rsmpi;
using mprt::Comm;
using mprt::CostModel;

/// Cost model with no compute charging and round numbers for exact math.
CostModel deterministic_model() {
  CostModel m;
  m.send_overhead_s = 1.0;
  m.recv_overhead_s = 2.0;
  m.latency_s = 10.0;
  m.per_byte_s = 0.5;
  m.compute_scale = 0.0;
  return m;
}

TEST(CostModel, WireTime) {
  CostModel m;
  m.latency_s = 5.0;
  m.per_byte_s = 0.25;
  EXPECT_DOUBLE_EQ(m.wire_time(0), 5.0);
  EXPECT_DOUBLE_EQ(m.wire_time(8), 7.0);
}

TEST(CostModel, FreeModelIsFree) {
  const CostModel m = CostModel::free();
  EXPECT_DOUBLE_EQ(m.wire_time(1 << 20), 0.0);
  EXPECT_DOUBLE_EQ(m.send_overhead_s, 0.0);
  EXPECT_DOUBLE_EQ(m.recv_overhead_s, 0.0);
}

TEST(VirtualClock, AdvanceAndMergeAreMonotone) {
  mprt::VirtualClock c;
  EXPECT_DOUBLE_EQ(c.now(), 0.0);
  c.advance(3.0);
  EXPECT_DOUBLE_EQ(c.now(), 3.0);
  c.advance(-5.0);  // negative durations are ignored
  EXPECT_DOUBLE_EQ(c.now(), 3.0);
  c.merge(1.0);  // merge never rewinds
  EXPECT_DOUBLE_EQ(c.now(), 3.0);
  c.merge(7.5);
  EXPECT_DOUBLE_EQ(c.now(), 7.5);
}

TEST(VClock, SingleMessageTiming) {
  // One 4-byte message: sender pays o_s = 1; arrival = 1 + L + 4G = 13;
  // receiver merges and pays o_r = 2 -> 15.
  const auto result = mprt::run(
      2,
      [](Comm& comm) {
        if (comm.rank() == 0) {
          comm.send(1, 0, std::int32_t{5});
        } else {
          (void)comm.recv<std::int32_t>(0, 0);
        }
      },
      deterministic_model());
  EXPECT_DOUBLE_EQ(result.rank_times_s[0], 1.0);
  EXPECT_DOUBLE_EQ(result.rank_times_s[1], 15.0);
  EXPECT_DOUBLE_EQ(result.makespan_s, 15.0);
}

TEST(VClock, MergeTakesMaxOfOwnAndSenderTime) {
  // The receiver has already advanced beyond the message's arrival time;
  // only o_r is added on top of its own clock.
  const auto result = mprt::run(
      2,
      [](Comm& comm) {
        if (comm.rank() == 0) {
          comm.send(1, 0, std::int32_t{5});  // arrival at t = 13
        } else {
          comm.clock().advance(100.0);
          (void)comm.recv<std::int32_t>(0, 0);  // 100 + o_r
        }
      },
      deterministic_model());
  EXPECT_DOUBLE_EQ(result.rank_times_s[1], 102.0);
}

TEST(VClock, ChainAccumulatesLatency) {
  // 0 -> 1 -> 2 relay of a 4-byte message: each hop adds o_s + L + 4G,
  // then o_r: rank2 time = 2*(1 + 12) + 2*2 = hmm, computed stepwise below.
  //   rank0: send at 0, pays o_s -> 1; arrival1 = 1 + 12 = 13.
  //   rank1: merge 13, +o_r -> 15; send pays o_s -> 16; arrival2 = 28.
  //   rank2: merge 28, +o_r -> 30.
  const auto result = mprt::run(
      3,
      [](Comm& comm) {
        if (comm.rank() == 0) {
          comm.send(1, 0, std::int32_t{1});
        } else if (comm.rank() == 1) {
          const auto v = comm.recv<std::int32_t>(0, 0);
          comm.send(2, 0, v);
        } else {
          (void)comm.recv<std::int32_t>(1, 0);
        }
      },
      deterministic_model());
  EXPECT_DOUBLE_EQ(result.rank_times_s[0], 1.0);
  EXPECT_DOUBLE_EQ(result.rank_times_s[1], 16.0);
  EXPECT_DOUBLE_EQ(result.rank_times_s[2], 30.0);
  EXPECT_DOUBLE_EQ(result.makespan_s, 30.0);
}

TEST(VClock, PayloadSizeAffectsWireTime) {
  // 16 bytes at 0.5 s/byte: arrival = o_s + L + 8 extra vs a 0-byte probe.
  const auto result = mprt::run(
      2,
      [](Comm& comm) {
        if (comm.rank() == 0) {
          const std::vector<std::int64_t> big = {1, 2};  // 16 bytes
          comm.send_span<std::int64_t>(1, 0, big);
        } else {
          (void)comm.recv_vector<std::int64_t>(0, 0);
        }
      },
      deterministic_model());
  // arrival = 1 + 10 + 16*0.5 = 19; +o_r = 21.
  EXPECT_DOUBLE_EQ(result.rank_times_s[1], 21.0);
}

TEST(VClock, ComputeTimerChargesCpuTime) {
  CostModel m = CostModel::free();
  m.compute_scale = 1.0;
  const auto result = mprt::run(
      1,
      [](Comm& comm) {
        auto timer = comm.compute_section();
        // Busy work long enough to register on the thread CPU clock.
        volatile double sink = 0;
        for (int i = 0; i < 2'000'000; ++i) sink = sink + 1.0;
      },
      m);
  EXPECT_GT(result.makespan_s, 0.0);
  EXPECT_LT(result.makespan_s, 10.0);  // sanity: well under wall-clock scale
}

TEST(VClock, ComputeScaleZeroSuppressesCharging) {
  const auto result = mprt::run(
      1,
      [](Comm& comm) {
        auto timer = comm.compute_section();
        volatile double sink = 0;
        for (int i = 0; i < 100'000; ++i) sink = sink + 1.0;
      },
      deterministic_model());
  EXPECT_DOUBLE_EQ(result.makespan_s, 0.0);
}

}  // namespace
