// Tests for the virtual machine: rank spawning, point-to-point messaging,
// failure propagation, and the send/byte counters.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "mprt/comm.hpp"
#include "mprt/runtime.hpp"
#include "util/error.hpp"

namespace {

using namespace rsmpi;
using mprt::Comm;

TEST(Runtime, SpawnsRequestedRanks) {
  std::atomic<int> count{0};
  std::vector<std::atomic<bool>> seen(8);
  mprt::run(8, [&](Comm& comm) {
    count.fetch_add(1);
    EXPECT_EQ(comm.size(), 8);
    EXPECT_GE(comm.rank(), 0);
    EXPECT_LT(comm.rank(), 8);
    seen[static_cast<std::size_t>(comm.rank())] = true;
  });
  EXPECT_EQ(count.load(), 8);
  for (const auto& s : seen) EXPECT_TRUE(s.load());
}

TEST(Runtime, SingleRankWorks) {
  auto result = mprt::run(1, [](Comm& comm) {
    EXPECT_EQ(comm.rank(), 0);
    EXPECT_EQ(comm.size(), 1);
  });
  EXPECT_EQ(result.total_messages, 0u);
}

TEST(Runtime, ZeroRanksRejected) {
  EXPECT_THROW(mprt::run(0, [](Comm&) {}), ArgumentError);
}

TEST(Runtime, PingPong) {
  mprt::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 7, 123);
      EXPECT_EQ(comm.recv<int>(1, 8), 124);
    } else {
      EXPECT_EQ(comm.recv<int>(0, 7), 123);
      comm.send(0, 8, 124);
    }
  });
}

TEST(Runtime, VectorPayloadRoundTrip) {
  mprt::run(2, [](Comm& comm) {
    const std::vector<double> data = {1.5, 2.5, 3.5};
    if (comm.rank() == 0) {
      comm.send_span<double>(1, 1, data);
    } else {
      EXPECT_EQ(comm.recv_vector<double>(0, 1), data);
    }
  });
}

TEST(Runtime, RecvSpanChecksExtent) {
  EXPECT_THROW(mprt::run(2,
                         [](Comm& comm) {
                           if (comm.rank() == 0) {
                             const std::vector<int> data = {1, 2, 3};
                             comm.send_span<int>(1, 1, data);
                           } else {
                             std::vector<int> out(2);  // wrong extent
                             comm.recv_span<int>(0, 1, out);
                           }
                         }),
               ProtocolError);
}

TEST(Runtime, WildcardRecvReportsSource) {
  mprt::run(3, [](Comm& comm) {
    if (comm.rank() == 0) {
      int seen_mask = 0;
      for (int i = 0; i < 2; ++i) {
        mprt::RecvStatus status;
        const int v = comm.recv<int>(mprt::kAnySource, 5, &status);
        EXPECT_EQ(v, status.source * 10);
        seen_mask |= 1 << status.source;
      }
      EXPECT_EQ(seen_mask, 0b110);
    } else {
      comm.send(0, 5, comm.rank() * 10);
    }
  });
}

TEST(Runtime, SelfSendRejected) {
  EXPECT_THROW(mprt::run(2,
                         [](Comm& comm) {
                           comm.send(comm.rank(), 0, 1);
                         }),
               ArgumentError);
}

TEST(Runtime, OutOfRangeDestinationRejected) {
  EXPECT_THROW(mprt::run(2,
                         [](Comm& comm) {
                           if (comm.rank() == 0) comm.send(5, 0, 1);
                         }),
               ArgumentError);
}

TEST(Runtime, ExceptionPropagatesToCaller) {
  EXPECT_THROW(mprt::run(4,
                         [](Comm& comm) {
                           if (comm.rank() == 2) {
                             throw std::logic_error("rank 2 failed");
                           }
                         }),
               std::logic_error);
}

TEST(Runtime, FailingRankUnblocksPeersInRecv) {
  // Rank 1 blocks forever waiting for a message that never comes; rank 0
  // throws.  Without fail-fast teardown this test would deadlock.
  EXPECT_THROW(mprt::run(2,
                         [](Comm& comm) {
                           if (comm.rank() == 0) {
                             throw std::runtime_error("boom");
                           }
                           (void)comm.recv<int>(0, 9);
                         }),
               std::runtime_error);
}

TEST(Runtime, CountersAggregateSends) {
  auto result = mprt::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 0, 1.0);  // 8 bytes
      comm.send(1, 0, 2.0);  // 8 bytes
    } else {
      (void)comm.recv<double>(0, 0);
      (void)comm.recv<double>(0, 0);
    }
  });
  EXPECT_EQ(result.total_messages, 2u);
  EXPECT_EQ(result.total_bytes, 16u);
}

TEST(Runtime, SendrecvExchangesValues) {
  mprt::run(2, [](Comm& comm) {
    const int partner = 1 - comm.rank();
    const int got =
        comm.sendrecv(partner, 3, comm.rank() * 100, partner, 3);
    EXPECT_EQ(got, partner * 100);
  });
}

TEST(Runtime, ManyRanksAllToOne) {
  constexpr int kRanks = 16;
  mprt::run(kRanks, [](Comm& comm) {
    if (comm.rank() == 0) {
      long sum = 0;
      for (int i = 1; i < comm.size(); ++i) {
        sum += comm.recv<long>(mprt::kAnySource, 1);
      }
      EXPECT_EQ(sum, kRanks * (kRanks - 1) / 2);
    } else {
      comm.send(0, 1, static_cast<long>(comm.rank()));
    }
  });
}

}  // namespace
