// Tests for the collective tag window, the receive-side counters, and the
// pending-operation table on Comm.
#include <gtest/gtest.h>

#include <climits>
#include <unordered_set>
#include <vector>

#include "coll/local_reduce.hpp"
#include "mprt/runtime.hpp"
#include "rs/ops/ops.hpp"
#include "svc/persistent.hpp"
#include "util/error.hpp"

namespace {

using namespace rsmpi;
using mprt::Comm;

// Regression: the tag sequence used to be masked to 16 bits, so the
// 65537th collective aliased the first and could steal its messages.
// The window now spans [2^20, INT_MAX].
TEST(TagWindow, SixtyFourKCollectivesGetDistinctTags) {
  mprt::run(1, [](Comm& comm) {
    std::unordered_set<int> seen;
    seen.reserve(70000);
    for (int i = 0; i < 70000; ++i) {
      const int tag = comm.next_collective_tag();
      EXPECT_GE(tag, Comm::kCollectiveTagBase);
      EXPECT_TRUE(seen.insert(tag).second) << "tag " << tag << " repeated";
    }
  });
}

TEST(TagWindow, ReservedBlocksNeverStraddleTheWrap) {
  mprt::run(1, [](Comm& comm) {
    // Big blocks walk the sequence past the window's end several times;
    // every block must stay inside [base, INT_MAX] as a contiguous range.
    const int block = 1 << 28;
    for (int i = 0; i < 40; ++i) {
      const int first = comm.reserve_collective_tags(block);
      EXPECT_GE(first, Comm::kCollectiveTagBase);
      EXPECT_LE(static_cast<std::int64_t>(first) + block - 1,
                static_cast<std::int64_t>(INT_MAX));
    }
  });
}

TEST(TagWindow, ConsecutiveReservationsAreDisjoint) {
  mprt::run(1, [](Comm& comm) {
    const int a = comm.reserve_collective_tags(3);
    const int b = comm.reserve_collective_tags(2);
    const int c = comm.next_collective_tag();
    EXPECT_GE(b, a + 3);
    EXPECT_GE(c, b + 2);
  });
}

TEST(TagWindow, RejectsBadCounts) {
  mprt::run(1, [](Comm& comm) {
    EXPECT_THROW(comm.reserve_collective_tags(0), ArgumentError);
    EXPECT_THROW(comm.reserve_collective_tags(-5), ArgumentError);
    EXPECT_THROW(comm.reserve_collective_tags(INT_MAX), ArgumentError);
  });
}

// The skip at the wrap must be taken identically by every rank (the
// sequence is SPMD state); otherwise tags stop matching across ranks.
TEST(TagWindow, TagsAgreeAcrossRanksThroughTheWrap) {
  mprt::run(4, [](Comm& comm) {
    int tag = 0;
    for (int i = 0; i < 40; ++i) {
      tag = comm.reserve_collective_tags(1 << 28);
    }
    const int max_tag = coll::local_allreduce_value(comm, tag,
                                                    coll::Max<int>{});
    const int min_tag = coll::local_allreduce_value(comm, tag,
                                                    coll::Min<int>{});
    EXPECT_EQ(max_tag, min_tag);
  });
}

// Sustainability: a persistent handle leases its reserved block every
// epoch instead of walking the global sequence, so an epoch loop far
// longer than the whole tag window never wraps it.  With a 32-tag window
// a per-epoch consumer would wrap 2.5 times in 80 epochs; the handle must
// hold the sequence perfectly flat while still reducing correctly.
TEST(TagWindow, PersistentHandleOutlivesShrunkenWindow) {
  mprt::run(4, [](Comm& comm) {
    comm.set_collective_tag_window_for_test(32);
    svc::PersistentReduce<rsmpi::rs::ops::Sum<long>> handle(
        comm, rsmpi::rs::ops::Sum<long>{});
    const std::int64_t consumed = comm.collective_tags_consumed();
    constexpr int kEpochs = 80;  // > 2x the shrunken window
    for (int e = 0; e < kEpochs; ++e) {
      const std::vector<long> mine = {static_cast<long>(comm.rank() + e)};
      const long got = handle.execute(mine);
      EXPECT_EQ(got, 4L * e + 0 + 1 + 2 + 3) << "epoch " << e;
      EXPECT_EQ(comm.collective_tags_consumed(), consumed) << "epoch " << e;
    }
  });
}

TEST(RecvCounters, CountMessagesAndBytes) {
  mprt::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 7, 123);
      comm.send(1, 7, 456L);
    } else {
      EXPECT_EQ(comm.messages_received(), 0u);
      (void)comm.recv_message(0, 7);
      (void)comm.recv_message(0, 7);
      EXPECT_EQ(comm.messages_received(), 2u);
      EXPECT_EQ(comm.bytes_received(), sizeof(int) + sizeof(long));
    }
  });
}

TEST(RecvCounters, TryRecvCountsOnlyOnSuccess) {
  mprt::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      EXPECT_FALSE(comm.try_recv<int>(1, 3).has_value());
      EXPECT_EQ(comm.messages_received(), 0u);
      std::optional<int> got;
      while (!got.has_value()) got = comm.try_recv<int>(1, 3);
      EXPECT_EQ(comm.messages_received(), 1u);
      EXPECT_EQ(comm.bytes_received(), sizeof(int));
    } else {
      comm.send(0, 3, 9);
    }
  });
}

TEST(RecvCounters, ResetClearsBothDirections) {
  mprt::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 1, 1);
    } else {
      (void)comm.recv_message(0, 1);
    }
    comm.reset_counters();
    EXPECT_EQ(comm.messages_sent(), 0u);
    EXPECT_EQ(comm.messages_received(), 0u);
    EXPECT_EQ(comm.bytes_received(), 0u);
  });
}

TEST(PendingOps, RegisterAndCompleteRoundTrip) {
  mprt::run(1, [](Comm& comm) {
    EXPECT_EQ(comm.pending_op_count(), 0u);
    const auto a = comm.register_pending_op(100, 2);
    const auto b = comm.register_pending_op(200, 1);
    EXPECT_EQ(comm.pending_op_count(), 2u);
    EXPECT_EQ(comm.pending_ops()[0].first_tag, 100);
    EXPECT_EQ(comm.pending_ops()[0].tag_count, 2);
    comm.complete_pending_op(a);
    EXPECT_EQ(comm.pending_op_count(), 1u);
    EXPECT_EQ(comm.pending_ops()[0].first_tag, 200);
    comm.complete_pending_op(b);
    EXPECT_EQ(comm.pending_op_count(), 0u);
  });
}

}  // namespace
