// Property tests for the rank-topology arithmetic: for every rank count,
// the binomial schedules must form a tree that delivers every rank's
// contribution to the root exactly once, preserving contiguity.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "mprt/topology.hpp"

namespace {

using namespace rsmpi::mprt::topology;

TEST(Topology, CeilPow2) {
  EXPECT_EQ(ceil_pow2(1), 1);
  EXPECT_EQ(ceil_pow2(2), 2);
  EXPECT_EQ(ceil_pow2(3), 4);
  EXPECT_EQ(ceil_pow2(5), 8);
  EXPECT_EQ(ceil_pow2(8), 8);
  EXPECT_EQ(ceil_pow2(1000), 1024);
}

TEST(Topology, FloorLog2) {
  EXPECT_EQ(floor_log2(1), 0);
  EXPECT_EQ(floor_log2(2), 1);
  EXPECT_EQ(floor_log2(3), 1);
  EXPECT_EQ(floor_log2(4), 2);
  EXPECT_EQ(floor_log2(1023), 9);
  EXPECT_EQ(floor_log2(1024), 10);
}

TEST(Topology, NumRounds) {
  EXPECT_EQ(num_rounds(1), 0);
  EXPECT_EQ(num_rounds(2), 1);
  EXPECT_EQ(num_rounds(3), 2);
  EXPECT_EQ(num_rounds(4), 2);
  EXPECT_EQ(num_rounds(5), 3);
  EXPECT_EQ(num_rounds(64), 6);
}

class BinomialScheduleProperty : public ::testing::TestWithParam<int> {};

TEST_P(BinomialScheduleProperty, EveryNonRootRankSendsExactlyOnce) {
  const int p = GetParam();
  for (int r = 0; r < p; ++r) {
    const auto steps = binomial_reduce_schedule(r, p);
    int sends = 0;
    for (const auto& s : steps) {
      if (s.role == BinomialStep::Role::kSend) ++sends;
    }
    EXPECT_EQ(sends, r == 0 ? 0 : 1) << "rank " << r << " of " << p;
    if (r != 0) {
      // The send is always the final step.
      EXPECT_EQ(steps.back().role, BinomialStep::Role::kSend);
    }
  }
}

TEST_P(BinomialScheduleProperty, SendsAndReceivesPairUp) {
  // If rank a sends to rank b in its schedule, then b's schedule receives
  // from a — and the tree reaches rank 0 from everywhere.
  const int p = GetParam();
  std::set<std::pair<int, int>> send_edges;
  std::set<std::pair<int, int>> recv_edges;
  for (int r = 0; r < p; ++r) {
    for (const auto& s : binomial_reduce_schedule(r, p)) {
      if (s.role == BinomialStep::Role::kSend) {
        send_edges.insert({r, s.partner});
      } else {
        recv_edges.insert({s.partner, r});
      }
    }
  }
  EXPECT_EQ(send_edges, recv_edges);
  EXPECT_EQ(send_edges.size(), static_cast<std::size_t>(p - 1));
}

TEST_P(BinomialScheduleProperty, SendersTargetLowerRanks) {
  // Contiguity: rank r sends to r - 2^k, so the receiver's interval
  // [recv, ...) is immediately left-adjacent to the sender's.
  const int p = GetParam();
  for (int r = 1; r < p; ++r) {
    const auto steps = binomial_reduce_schedule(r, p);
    const auto& send = steps.back();
    EXPECT_LT(send.partner, r);
    // Partner distance is the lowest set bit of r.
    EXPECT_EQ(r - send.partner, r & -r);
  }
}

TEST_P(BinomialScheduleProperty, BcastIsMirrorOfReduce) {
  const int p = GetParam();
  for (int r = 0; r < p; ++r) {
    const auto red = binomial_reduce_schedule(r, p);
    const auto bc = binomial_bcast_schedule(r, p);
    ASSERT_EQ(red.size(), bc.size());
    for (std::size_t i = 0; i < red.size(); ++i) {
      const auto& fwd = red[i];
      const auto& rev = bc[bc.size() - 1 - i];
      EXPECT_EQ(fwd.partner, rev.partner);
      EXPECT_NE(static_cast<int>(fwd.role), static_cast<int>(rev.role));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RankCounts, BinomialScheduleProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 13, 16,
                                           17, 31, 32, 33, 64, 100));

// -- Large-p boundaries (ISSUE 10) -------------------------------------------
//
// Rank virtualization pushes p into the thousands, where off-by-one bugs
// in the power-of-two arithmetic live at 2^k ± 1.  Sweep every such
// boundary up to k = 12 (p = 4097).

TEST(Topology, Pow2BoundariesUpToFourThousand) {
  for (int k = 1; k <= 12; ++k) {
    const int pow2 = 1 << k;
    EXPECT_EQ(ceil_pow2(pow2 - 1), pow2 == 2 ? 1 : pow2) << "k=" << k;
    EXPECT_EQ(ceil_pow2(pow2), pow2) << "k=" << k;
    EXPECT_EQ(ceil_pow2(pow2 + 1), 2 * pow2) << "k=" << k;

    EXPECT_EQ(floor_log2(pow2 - 1), k - 1) << "k=" << k;
    EXPECT_EQ(floor_log2(pow2), k) << "k=" << k;
    EXPECT_EQ(floor_log2(pow2 + 1), k) << "k=" << k;

    EXPECT_EQ(num_rounds(pow2 - 1), pow2 == 2 ? 0 : k) << "k=" << k;
    EXPECT_EQ(num_rounds(pow2), k) << "k=" << k;
    EXPECT_EQ(num_rounds(pow2 + 1), k + 1) << "k=" << k;
  }
}

// The binomial tree invariants (every non-root sends exactly once, edges
// pair up, send targets are lower) checked exhaustively above for small p
// must also hold at the virtualized boundary widths — spot-check the
// aggregate edge count and the lowest-set-bit partner rule, which together
// imply a well-formed tree without enumerating all O(p log p) steps twice.
TEST(Topology, BinomialTreeAtLargeBoundaries) {
  for (const int p : {1023, 1024, 1025, 2047, 2048, 2049, 4095, 4096, 4097}) {
    std::size_t total_sends = 0;
    for (int r = 0; r < p; ++r) {
      const auto steps = binomial_reduce_schedule(r, p);
      for (const auto& s : steps) {
        ASSERT_GE(s.partner, 0) << "p=" << p << " rank " << r;
        ASSERT_LT(s.partner, p) << "p=" << p << " rank " << r;
        if (s.role == BinomialStep::Role::kSend) ++total_sends;
      }
      if (r != 0) {
        ASSERT_EQ(steps.back().role, BinomialStep::Role::kSend);
        ASSERT_EQ(r - steps.back().partner, r & -r) << "p=" << p;
      }
      ASSERT_EQ(binomial_bcast_schedule(r, p).size(), steps.size());
    }
    EXPECT_EQ(total_sends, static_cast<std::size_t>(p - 1)) << "p=" << p;
  }
}

// -- NodeMap (ISSUE 10) ------------------------------------------------------
//
// The contiguous node map behind the hierarchical schedule: node sizes
// must partition p, leaders must be the first rank of each block, and the
// local/global coordinates must round-trip — including ragged last nodes
// and the degenerate flat (rpn = 1) and single-node (rpn >= p) shapes.

TEST(Topology, NodeMapPartitionsRanks) {
  for (const int p : {1, 2, 7, 8, 16, 33, 100, 257, 1024, 4095, 4096, 4097}) {
    for (const int rpn : {1, 2, 3, 8, 16, 5000}) {
      const NodeMap map(p, rpn);
      int covered = 0;
      for (int n = 0; n < map.num_nodes(); ++n) {
        const int sz = map.node_size(n);
        ASSERT_GE(sz, 1) << "p=" << p << " rpn=" << rpn << " node " << n;
        ASSERT_LE(sz, rpn) << "p=" << p << " rpn=" << rpn << " node " << n;
        ASSERT_EQ(map.leader_of(n), covered);
        covered += sz;
      }
      ASSERT_EQ(covered, p) << "p=" << p << " rpn=" << rpn;
      for (int r = 0; r < p; ++r) {
        const int n = map.node_of(r);
        ASSERT_EQ(map.leader_of(n) + map.local_rank(r), r);
        ASSERT_EQ(map.is_leader(r), map.local_rank(r) == 0);
        ASSERT_LT(map.local_rank(r), map.node_size(n));
      }
    }
  }
}

TEST(Topology, NodeMapRaggedLastNode) {
  const NodeMap map(/*p=*/10, /*ranks_per_node=*/4);
  EXPECT_EQ(map.num_nodes(), 3);
  EXPECT_EQ(map.node_size(0), 4);
  EXPECT_EQ(map.node_size(1), 4);
  EXPECT_EQ(map.node_size(2), 2);
  EXPECT_EQ(map.leader_of(2), 8);
  EXPECT_TRUE(map.is_leader(8));
  EXPECT_FALSE(map.is_leader(9));
}

}  // namespace
