// Property tests for the rank-topology arithmetic: for every rank count,
// the binomial schedules must form a tree that delivers every rank's
// contribution to the root exactly once, preserving contiguity.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "mprt/topology.hpp"

namespace {

using namespace rsmpi::mprt::topology;

TEST(Topology, CeilPow2) {
  EXPECT_EQ(ceil_pow2(1), 1);
  EXPECT_EQ(ceil_pow2(2), 2);
  EXPECT_EQ(ceil_pow2(3), 4);
  EXPECT_EQ(ceil_pow2(5), 8);
  EXPECT_EQ(ceil_pow2(8), 8);
  EXPECT_EQ(ceil_pow2(1000), 1024);
}

TEST(Topology, FloorLog2) {
  EXPECT_EQ(floor_log2(1), 0);
  EXPECT_EQ(floor_log2(2), 1);
  EXPECT_EQ(floor_log2(3), 1);
  EXPECT_EQ(floor_log2(4), 2);
  EXPECT_EQ(floor_log2(1023), 9);
  EXPECT_EQ(floor_log2(1024), 10);
}

TEST(Topology, NumRounds) {
  EXPECT_EQ(num_rounds(1), 0);
  EXPECT_EQ(num_rounds(2), 1);
  EXPECT_EQ(num_rounds(3), 2);
  EXPECT_EQ(num_rounds(4), 2);
  EXPECT_EQ(num_rounds(5), 3);
  EXPECT_EQ(num_rounds(64), 6);
}

class BinomialScheduleProperty : public ::testing::TestWithParam<int> {};

TEST_P(BinomialScheduleProperty, EveryNonRootRankSendsExactlyOnce) {
  const int p = GetParam();
  for (int r = 0; r < p; ++r) {
    const auto steps = binomial_reduce_schedule(r, p);
    int sends = 0;
    for (const auto& s : steps) {
      if (s.role == BinomialStep::Role::kSend) ++sends;
    }
    EXPECT_EQ(sends, r == 0 ? 0 : 1) << "rank " << r << " of " << p;
    if (r != 0) {
      // The send is always the final step.
      EXPECT_EQ(steps.back().role, BinomialStep::Role::kSend);
    }
  }
}

TEST_P(BinomialScheduleProperty, SendsAndReceivesPairUp) {
  // If rank a sends to rank b in its schedule, then b's schedule receives
  // from a — and the tree reaches rank 0 from everywhere.
  const int p = GetParam();
  std::set<std::pair<int, int>> send_edges;
  std::set<std::pair<int, int>> recv_edges;
  for (int r = 0; r < p; ++r) {
    for (const auto& s : binomial_reduce_schedule(r, p)) {
      if (s.role == BinomialStep::Role::kSend) {
        send_edges.insert({r, s.partner});
      } else {
        recv_edges.insert({s.partner, r});
      }
    }
  }
  EXPECT_EQ(send_edges, recv_edges);
  EXPECT_EQ(send_edges.size(), static_cast<std::size_t>(p - 1));
}

TEST_P(BinomialScheduleProperty, SendersTargetLowerRanks) {
  // Contiguity: rank r sends to r - 2^k, so the receiver's interval
  // [recv, ...) is immediately left-adjacent to the sender's.
  const int p = GetParam();
  for (int r = 1; r < p; ++r) {
    const auto steps = binomial_reduce_schedule(r, p);
    const auto& send = steps.back();
    EXPECT_LT(send.partner, r);
    // Partner distance is the lowest set bit of r.
    EXPECT_EQ(r - send.partner, r & -r);
  }
}

TEST_P(BinomialScheduleProperty, BcastIsMirrorOfReduce) {
  const int p = GetParam();
  for (int r = 0; r < p; ++r) {
    const auto red = binomial_reduce_schedule(r, p);
    const auto bc = binomial_bcast_schedule(r, p);
    ASSERT_EQ(red.size(), bc.size());
    for (std::size_t i = 0; i < red.size(); ++i) {
      const auto& fwd = red[i];
      const auto& rev = bc[bc.size() - 1 - i];
      EXPECT_EQ(fwd.partner, rev.partner);
      EXPECT_NE(static_cast<int>(fwd.role), static_cast<int>(rev.role));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RankCounts, BinomialScheduleProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 13, 16,
                                           17, 31, 32, 33, 64, 100));

}  // namespace
