// Regression tests for sequence-number delivery (ISSUE 4, satellite 1):
// Mailbox::try_take_due (the poll the async progress engine replays on)
// and blocking take must agree on one delivery order when a fault plan
// physically reorders or duplicates messages, and each sequence number is
// delivered at most once.
#include <gtest/gtest.h>

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "mprt/mailbox.hpp"
#include "mprt/runtime.hpp"
#include "mprt/sim.hpp"
#include "rs/async.hpp"
#include "rs/ops/counts.hpp"
#include "rs/reduce.hpp"
#include "util/error.hpp"

namespace {

using namespace rsmpi;
using mprt::Comm;
using mprt::kAnySource;
using mprt::kAnyTag;
using mprt::Mailbox;
using mprt::Message;
using mprt::SimConfig;

constexpr std::int64_t kWorld = 0;

Message make_msg(int source, int tag, std::uint64_t seq,
                 double arrival_s = 0.0) {
  Message m;
  m.context = kWorld;
  m.source = source;
  m.tag = tag;
  m.seq = seq;
  m.arrival_vtime_s = arrival_s;
  const auto marker = static_cast<std::byte>(seq);
  m.assign_payload(std::span<const std::byte>(&marker, 1));
  return m;
}

TEST(Sequence, PhysicalReorderDeliversInSeqOrder) {
  Mailbox mb;
  mb.put(make_msg(0, 1, 2));
  mb.put(make_msg(0, 1, 3));
  mb.put(make_msg(0, 1, 1), /*front=*/true);  // fault-plan front insertion
  EXPECT_EQ(mb.take(kWorld, 0, 1).seq, 1u);
  EXPECT_EQ(mb.take(kWorld, 0, 1).seq, 2u);
  EXPECT_EQ(mb.take(kWorld, 0, 1).seq, 3u);
}

TEST(Sequence, FrontInsertedLaterSeqCannotOvertake) {
  Mailbox mb;
  mb.put(make_msg(0, 7, 1));
  mb.put(make_msg(0, 7, 2), /*front=*/true);
  // Physically seq 2 is at the head; logically seq 1 still precedes it.
  auto got = mb.try_take(kWorld, 0, 7);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->seq, 1u);
}

TEST(Sequence, DuplicateSeqIsDeliveredOnceAndCounted) {
  Mailbox mb;
  mb.put(make_msg(0, 1, 1));
  mb.put(make_msg(0, 1, 1));  // duplicate delivery of the same send
  mb.put(make_msg(0, 1, 2));
  EXPECT_EQ(mb.take(kWorld, 0, 1).seq, 1u);
  EXPECT_EQ(mb.take(kWorld, 0, 1).seq, 2u);
  EXPECT_EQ(mb.pending(), 0u);
  EXPECT_EQ(mb.duplicates_suppressed(), 1u);
}

TEST(Sequence, ProbeAgreesWithTakeOnDuplicates) {
  Mailbox mb;
  mb.put(make_msg(0, 1, 1));
  EXPECT_EQ(mb.take(kWorld, 0, 1).seq, 1u);
  // A late duplicate of the delivered message: probe must not advertise a
  // message take would refuse to deliver.
  mb.put(make_msg(0, 1, 1));
  EXPECT_FALSE(mb.probe(kWorld, 0, 1));
  EXPECT_EQ(mb.duplicates_suppressed(), 1u);
  EXPECT_EQ(mb.pending(), 0u);  // purged by the probe
}

TEST(Sequence, StreamsAreIndependent) {
  Mailbox mb;
  mb.put(make_msg(0, 1, 5));  // (src 0, tag 1) stream is at seq 5
  mb.put(make_msg(1, 1, 1));  // (src 1, tag 1) is a different stream
  mb.put(make_msg(0, 2, 1));  // as is (src 0, tag 2)
  EXPECT_EQ(mb.take(kWorld, 0, 1).seq, 5u);
  EXPECT_EQ(mb.take(kWorld, 1, 1).seq, 1u);
  EXPECT_EQ(mb.take(kWorld, 0, 2).seq, 1u);
  EXPECT_EQ(mb.duplicates_suppressed(), 0u);
}

TEST(Sequence, TryTakeDueHonorsSeqOrderAcrossArrivalTimes) {
  Mailbox mb;
  // Fault-plan delay: seq 1 arrives (virtually) *later* than seq 2.
  mb.put(make_msg(0, 1, 2, /*arrival_s=*/1.0));
  mb.put(make_msg(0, 1, 1, /*arrival_s=*/5.0));

  // At t=2 only seq 2 is due — but it may not overtake seq 1, so the
  // stream yields nothing.
  EXPECT_FALSE(mb.try_take_due(kWorld, 0, 1, 2.0).has_value());
  // Once the stream head is due, delivery is in seq order.
  auto first = mb.try_take_due(kWorld, 0, 1, 6.0);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->seq, 1u);
  auto second = mb.try_take_due(kWorld, 0, 1, 6.0);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->seq, 2u);
}

TEST(Sequence, TryTakeDueAndBlockingTakeAgree) {
  // The same reordered+duplicated queue drained two ways must produce the
  // same sequence of messages.
  const auto build = [] {
    auto mb = std::make_unique<Mailbox>();
    mb->put(make_msg(0, 1, 2, 0.5));
    mb->put(make_msg(0, 1, 2, 0.7));               // duplicate
    mb->put(make_msg(0, 1, 1, 0.1), /*front=*/true);
    mb->put(make_msg(0, 1, 3, 0.2));
    return mb;
  };

  std::vector<std::uint64_t> via_take;
  {
    auto mb = build();
    for (int i = 0; i < 3; ++i) {
      via_take.push_back(mb->take(kWorld, kAnySource, kAnyTag).seq);
    }
    EXPECT_EQ(mb->pending(), 0u);
  }
  std::vector<std::uint64_t> via_due;
  {
    auto mb = build();
    while (auto m = mb->try_take_due(kWorld, kAnySource, kAnyTag, 10.0)) {
      via_due.push_back(m->seq);
    }
  }
  EXPECT_EQ(via_take, (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_EQ(via_due, via_take);
}

TEST(Sequence, LegacyUnsequencedMessagesKeepQueueOrder) {
  // seq 0 marks messages constructed outside Comm::send (older tests,
  // hand-built harnesses): they must keep the historical queue-position
  // order and never participate in duplicate suppression.
  Mailbox mb;
  mb.put(make_msg(0, 1, 0, /*arrival_s=*/1.0));
  mb.put(make_msg(0, 1, 0, /*arrival_s=*/2.0));
  EXPECT_EQ(mb.take(kWorld, 0, 1).arrival_vtime_s, 1.0);
  EXPECT_EQ(mb.take(kWorld, 0, 1).arrival_vtime_s, 2.0);
  EXPECT_EQ(mb.duplicates_suppressed(), 0u);
}

// The end-to-end replay the satellite names: the async progress engine
// (which drains with try_take_due between compute chunks and a blocking
// take at the end) under a reorder+duplicate fault plan must match the
// blocking collective bit for bit.
TEST(Sequence, AsyncEngineReplayUnderReorderAndDuplicates) {
  SimConfig sim;
  sim.seed = 77;
  sim.duplicate_prob = 0.7;
  sim.reorder_prob = 0.7;
  sim.delay_prob = 0.5;
  sim.max_extra_delay_s = 2e-5;

  std::vector<std::vector<long>> async_out(7);
  std::vector<std::vector<long>> blocking_out(7);
  mprt::run(
      7,
      [&](Comm& comm) {
        const auto r = static_cast<std::size_t>(comm.rank());
        std::vector<int> mine;
        for (int i = 0; i < 12; ++i) {
          mine.push_back((comm.rank() * 31 + i * 17) % 8);
        }
        blocking_out[r] = rs::reduce(comm, mine, rs::ops::Counts(8));
        auto fut = rs::reduce_async(comm, mine, rs::ops::Counts(8));
        // Poll between compute chunks, as an overlapping caller would;
        // this drives the try_take_due path before the final wait.
        for (int chunk = 0; chunk < 4; ++chunk) {
          auto timer = comm.compute_section();
          coll::nb::poll();
        }
        async_out[r] = fut.get();
      },
      mprt::CostModel{}, sim);

  for (std::size_t r = 0; r < 7; ++r) {
    EXPECT_EQ(async_out[r], blocking_out[r]) << "rank " << r;
    EXPECT_EQ(async_out[r], async_out[0]) << "rank " << r;
  }
}

}  // namespace
