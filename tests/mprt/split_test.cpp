// Tests for subcommunicators: group formation, rank ordering, traffic
// isolation, and collectives/global-view reductions running unchanged on
// split groups.
#include <gtest/gtest.h>

#include <vector>

#include "coll/barrier.hpp"
#include "coll/gather.hpp"
#include "coll/local_reduce.hpp"
#include "mprt/runtime.hpp"
#include "rs/ops/ops.hpp"
#include "rs/reduce.hpp"
#include "rs/scan.hpp"

namespace {

using namespace rsmpi;
using mprt::Comm;

TEST(Split, EvenOddPartition) {
  mprt::run(8, [](Comm& world) {
    Comm sub = world.split(world.rank() % 2, world.rank());
    EXPECT_EQ(sub.size(), 4);
    EXPECT_EQ(sub.rank(), world.rank() / 2);
    EXPECT_EQ(sub.global_rank(), world.rank());
  });
}

TEST(Split, KeyReversesOrder) {
  mprt::run(6, [](Comm& world) {
    // One group, keyed descending by world rank.
    Comm sub = world.split(0, -world.rank());
    EXPECT_EQ(sub.size(), 6);
    EXPECT_EQ(sub.rank(), world.size() - 1 - world.rank());
  });
}

TEST(Split, SingletonGroups) {
  mprt::run(4, [](Comm& world) {
    Comm sub = world.split(world.rank(), 0);
    EXPECT_EQ(sub.size(), 1);
    EXPECT_EQ(sub.rank(), 0);
  });
}

TEST(Split, NegativeColorRejected) {
  EXPECT_THROW(mprt::run(2,
                         [](Comm& world) {
                           (void)world.split(-1, 0);
                         }),
               ArgumentError);
}

TEST(Split, PointToPointStaysInsideGroup) {
  mprt::run(4, [](Comm& world) {
    Comm sub = world.split(world.rank() % 2, world.rank());
    // Each 2-rank group exchanges: sub rank 0 <-> sub rank 1, same tag.
    const int partner = 1 - sub.rank();
    const int token = world.rank() * 10;
    const int got = sub.sendrecv(partner, 5, token, partner, 5);
    // Even group holds world {0, 2}; odd group {1, 3}.
    const int want = (world.rank() % 2 == 0)
                         ? (world.rank() == 0 ? 20 : 0)
                         : (world.rank() == 1 ? 30 : 10);
    EXPECT_EQ(got, want);
  });
}

TEST(Split, ConcurrentCollectivesOnSiblingGroups) {
  // Both halves run a reduction with identical tags at the same time; the
  // context keeps them apart.
  mprt::run(8, [](Comm& world) {
    Comm sub = world.split(world.rank() < 4 ? 0 : 1, world.rank());
    const long sum = coll::local_allreduce_value(
        sub, static_cast<long>(world.rank()), coll::Sum<long>{});
    EXPECT_EQ(sum, world.rank() < 4 ? 0 + 1 + 2 + 3 : 4 + 5 + 6 + 7);
  });
}

TEST(Split, GlobalViewReductionOnSubgroup) {
  mprt::run(6, [](Comm& world) {
    Comm sub = world.split(world.rank() % 3, world.rank());
    // Each group of 2 reduces its members' blocks.
    std::vector<int> mine = {world.rank() * 100, world.rank() * 100 + 1};
    const auto mins = rs::reduce(sub, mine, rs::ops::MinK<int>(2));
    const int low = world.rank() % 3;  // lowest world rank in my group
    EXPECT_EQ(mins, (std::vector<int>{low * 100, low * 100 + 1}));
  });
}

TEST(Split, ScanOnSubgroupUsesGroupOrder) {
  mprt::run(8, [](Comm& world) {
    Comm sub = world.split(world.rank() % 2, world.rank());
    std::vector<char> mine = {static_cast<char>('a' + world.rank())};
    const auto prefixes = rs::scan(sub, mine, rs::ops::Concat{});
    ASSERT_EQ(prefixes.size(), 1u);
    // Even group sees a, c, e, g; odd group b, d, f, h.
    std::string want;
    for (int r = world.rank() % 2; r <= world.rank(); r += 2) {
      want.push_back(static_cast<char>('a' + r));
    }
    EXPECT_EQ(prefixes[0], want);
  });
}

TEST(Split, NestedSplits) {
  mprt::run(8, [](Comm& world) {
    Comm half = world.split(world.rank() / 4, world.rank());
    ASSERT_EQ(half.size(), 4);
    Comm quarter = half.split(half.rank() / 2, half.rank());
    ASSERT_EQ(quarter.size(), 2);
    const long sum = coll::local_allreduce_value(
        quarter, static_cast<long>(world.rank()), coll::Sum<long>{});
    // Quarters are {0,1}, {2,3}, {4,5}, {6,7} in world ranks.
    const int base = (world.rank() / 2) * 2;
    EXPECT_EQ(sum, base + base + 1);
  });
}

TEST(Split, RowColumnGridReductions) {
  // The classic 2D use: row sums and column sums of a p = rows x cols
  // grid of ranks, via two splits of the same world communicator.
  static constexpr int kRows = 3, kCols = 4;
  mprt::run(kRows * kCols, [](Comm& world) {
    const int row = world.rank() / kCols;
    const int col = world.rank() % kCols;
    Comm row_comm = world.split(row, col);
    Comm col_comm = world.split(col, row);
    ASSERT_EQ(row_comm.size(), kCols);
    ASSERT_EQ(col_comm.size(), kRows);

    const long v = world.rank() + 1;
    const long row_sum =
        coll::local_allreduce_value(row_comm, v, coll::Sum<long>{});
    const long col_sum =
        coll::local_allreduce_value(col_comm, v, coll::Sum<long>{});

    long want_row = 0, want_col = 0;
    for (int c = 0; c < kCols; ++c) want_row += row * kCols + c + 1;
    for (int r = 0; r < kRows; ++r) want_col += r * kCols + col + 1;
    EXPECT_EQ(row_sum, want_row);
    EXPECT_EQ(col_sum, want_col);
  });
}

TEST(Split, ParentStillUsableAfterSplit) {
  mprt::run(4, [](Comm& world) {
    Comm sub = world.split(world.rank() % 2, world.rank());
    const long sub_sum = coll::local_allreduce_value(
        sub, static_cast<long>(1), coll::Sum<long>{});
    EXPECT_EQ(sub_sum, 2);
    const long world_sum = coll::local_allreduce_value(
        world, static_cast<long>(1), coll::Sum<long>{});
    EXPECT_EQ(world_sum, 4);
  });
}

TEST(Split, SharedClockAcrossCommunicators) {
  mprt::run(2, [](Comm& world) {
    Comm sub = world.split(0, world.rank());
    world.clock().advance(5.0);
    EXPECT_DOUBLE_EQ(sub.clock().now(), world.clock().now());
  });
}

}  // namespace
