// Rank virtualization (ISSUE 10): many virtual ranks multiplexed onto a
// small OS-thread worker pool via ucontext fibers.
//
// The headline acceptance test runs a p=4096 zoo allreduce on 8 workers —
// three orders of magnitude more ranks than threads — and checks every
// rank's result against the serial oracle, plus the scheduler counters
// surfaced through RunResult.  The remaining tests pin down the failure
// modes unique to virtualization: exact structural deadlock detection
// (every fiber parked, no timers pending) and the timed-receive path,
// whose deadline slices must ride the scheduler's timer heap rather than
// a condition-variable wait.

#include <gtest/gtest.h>

#include <cstdint>

#include "mprt/runtime.hpp"
#include "rs/state_exchange.hpp"
#include "util/error.hpp"
#include "verify/registry.hpp"

namespace {

using namespace rsmpi;
using mprt::Comm;

// p = 4096 virtual ranks on 8 OS threads: the production state_allreduce
// dispatch (the flat cost model picks a logarithmic schedule for the
// small Counts state — never the 2(p−1)-step ring) must deliver the
// serial-oracle result on every rank, well inside the default ctest
// timeout.
TEST(Virtualized, P4096CountsAllreduceOnEightWorkers) {
  constexpr int kRanks = 4096;
  const mprt::ExecPolicy exec{/*workers=*/8, /*stack_bytes=*/0};
  std::vector<rs::reduce_result_t<rs::ops::Counts>> results(kRanks);
  const mprt::RunResult run = mprt::run(
      kRanks,
      [&](Comm& comm) {
        auto op = verify::accumulated<rs::ops::Counts>(comm.rank());
        rs::detail::state_allreduce(comm, op,
                                    verify::make_prototype<rs::ops::Counts>());
        results[static_cast<std::size_t>(comm.rank())] = rs::red_result(op);
      },
      mprt::CostModel{}, mprt::SimConfig{}, exec);

  const auto want = verify::expected_result<rs::ops::Counts>(kRanks);
  for (int r = 0; r < kRanks; ++r) {
    ASSERT_TRUE(results[static_cast<std::size_t>(r)] == want) << "rank " << r;
  }

  // Scheduler observability: the pool really was 8 workers wide, ranks
  // really parked (4096 fibers cannot all run at once on 8 threads), and
  // the park/resume protocol fired.
  EXPECT_EQ(run.workers, 8u);
  EXPECT_GT(run.parked_ranks, 0u);
  EXPECT_LE(run.parked_ranks, static_cast<std::uint64_t>(kRanks));
  EXPECT_GT(run.park_events, 0u);
}

// workers = 0 forces the classic thread-per-rank runtime: the virtualized
// counters must read zero so dashboards can tell the modes apart.
TEST(Virtualized, ThreadedModeReportsNoWorkers) {
  const mprt::ExecPolicy threaded{/*workers=*/0, /*stack_bytes=*/0};
  const mprt::RunResult run = mprt::run(
      4,
      [](Comm& comm) {
        auto op = verify::accumulated<rs::ops::Counts>(comm.rank());
        rs::detail::state_allreduce(comm, op,
                                    verify::make_prototype<rs::ops::Counts>());
      },
      mprt::CostModel{}, mprt::SimConfig{}, threaded);
  EXPECT_EQ(run.workers, 0u);
  EXPECT_EQ(run.parked_ranks, 0u);
  EXPECT_EQ(run.park_events, 0u);
}

// A custom fiber stack size flows through ExecPolicy (the RSMPI_STACK_BYTES
// env var takes the same path); the run must still complete correctly.
TEST(Virtualized, CustomStackSize) {
  const mprt::ExecPolicy exec{/*workers=*/2, /*stack_bytes=*/512 * 1024};
  std::vector<rs::reduce_result_t<rs::ops::Counts>> results(16);
  mprt::run(
      16,
      [&](Comm& comm) {
        auto op = verify::accumulated<rs::ops::Counts>(comm.rank());
        rs::detail::state_allreduce(comm, op,
                                    verify::make_prototype<rs::ops::Counts>());
        results[static_cast<std::size_t>(comm.rank())] = rs::red_result(op);
      },
      mprt::CostModel{}, mprt::SimConfig{}, exec);
  const auto want = verify::expected_result<rs::ops::Counts>(16);
  for (int r = 0; r < 16; ++r) {
    EXPECT_TRUE(results[static_cast<std::size_t>(r)] == want) << "rank " << r;
  }
}

// Two ranks each blocking on a receive the other never sends: with every
// fiber parked and no timers pending, the virtualized scheduler has exact
// knowledge that no progress is possible and must convert the hang into
// DeadlockError instead of stalling until the ctest timeout.
TEST(Virtualized, StructuralDeadlockDetected) {
  const mprt::ExecPolicy exec{/*workers=*/2, /*stack_bytes=*/0};
  EXPECT_THROW(
      mprt::run(
          2,
          [](Comm& comm) {
            const int peer = 1 - comm.rank();
            (void)comm.recv_message(peer, /*tag=*/7);
          },
          mprt::CostModel{}, mprt::SimConfig{}, exec),
      rsmpi::DeadlockError);
}

// Receive deadlines under virtualization: the deadline slices must arm
// timers on the scheduler's heap (a parked fiber cannot sit in a timed
// condition-variable wait), fire after the budget, and surface the usual
// TimeoutError.  Rank 0 exits immediately, so rank 1 is the sole parked
// fiber — the pending timer is the only thing distinguishing this state
// from a structural deadlock.
TEST(Virtualized, RecvDeadlineFiresOnTimerHeap) {
  const mprt::ExecPolicy exec{/*workers=*/2, /*stack_bytes=*/0};
  bool timed_out = false;
  mprt::run(
      2,
      [&](Comm& comm) {
        if (comm.rank() != 1) return;
        comm.set_recv_deadline(
            mprt::RecvDeadline{/*timeout_s=*/0.05, /*retries=*/2,
                               /*backoff=*/2.0});
        try {
          (void)comm.recv_message(0, /*tag=*/7);
        } catch (const rsmpi::TimeoutError&) {
          timed_out = true;
        }
      },
      mprt::CostModel{}, mprt::SimConfig{}, exec);
  EXPECT_TRUE(timed_out);
}

}  // namespace
