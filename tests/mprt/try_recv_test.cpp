// Tests for the non-blocking receive path on Comm.
#include <gtest/gtest.h>

#include "coll/barrier.hpp"
#include "mprt/runtime.hpp"
#include "util/error.hpp"

namespace {

using namespace rsmpi;
using mprt::Comm;

TEST(TryRecv, ReturnsNulloptBeforeArrival) {
  mprt::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      EXPECT_FALSE(comm.try_recv<int>(1, 5).has_value());
      // Synchronize so the message definitely arrived, then poll.
      coll::barrier(comm);
      std::optional<int> got;
      while (!got.has_value()) {
        got = comm.try_recv<int>(1, 5);
      }
      EXPECT_EQ(*got, 77);
    } else {
      comm.send(0, 5, 77);
      coll::barrier(comm);
    }
  });
}

TEST(TryRecv, MatchesPatternOnly) {
  mprt::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      coll::barrier(comm);  // message is queued after this
      EXPECT_FALSE(comm.try_recv<int>(1, 99).has_value());  // wrong tag
      auto got = comm.try_recv<int>(mprt::kAnySource, mprt::kAnyTag);
      ASSERT_TRUE(got.has_value());
      EXPECT_EQ(*got, 5);
    } else {
      comm.send(0, 7, 5);
      coll::barrier(comm);
    }
  });
}

TEST(TryRecv, AdvancesClockOnlyOnSuccess) {
  mprt::CostModel m = mprt::CostModel::free();
  m.recv_overhead_s = 2.0;
  m.compute_scale = 0.0;
  mprt::run(
      2,
      [](Comm& comm) {
        if (comm.rank() == 0) {
          const double before = comm.clock().now();
          (void)comm.try_recv<int>(1, 1);  // nothing there yet
          EXPECT_DOUBLE_EQ(comm.clock().now(), before);
          coll::barrier(comm);
          std::optional<int> got;
          while (!got.has_value()) got = comm.try_recv<int>(1, 1);
          EXPECT_GE(comm.clock().now(), 2.0);  // o_r charged on success
        } else {
          comm.send(0, 1, 1);
          coll::barrier(comm);
        }
      },
      m);
}

TEST(TryRecv, RejectsBadSource) {
  EXPECT_THROW(mprt::run(2,
                         [](Comm& comm) {
                           (void)comm.try_recv<int>(9, 0);
                         }),
               ArgumentError);
}

TEST(TryRecv, ReportsStatus) {
  mprt::run(3, [](Comm& comm) {
    if (comm.rank() == 0) {
      coll::barrier(comm);
      mprt::RecvStatus status;
      std::optional<long> got;
      while (!got.has_value()) {
        got = comm.try_recv<long>(mprt::kAnySource, mprt::kAnyTag, &status);
      }
      EXPECT_EQ(*got, status.source * 100L);
      EXPECT_EQ(status.tag, 4);
    } else {
      if (comm.rank() == 2) comm.send(0, 4, 200L);
      coll::barrier(comm);
    }
  });
}

}  // namespace
