// Unit tests for the per-rank mailbox: matching (including communicator
// contexts), ordering, and abort.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <span>
#include <thread>
#include <vector>

#include "mprt/mailbox.hpp"
#include "util/error.hpp"

namespace {

using rsmpi::AbortError;
using rsmpi::mprt::kAnySource;
using rsmpi::mprt::kAnyTag;
using rsmpi::mprt::Mailbox;
using rsmpi::mprt::Message;

constexpr std::int64_t kWorld = 0;

Message make_msg(int source, int tag, std::byte marker = std::byte{0},
                 std::int64_t context = kWorld) {
  Message m;
  m.context = context;
  m.source = source;
  m.tag = tag;
  m.assign_payload(std::span<const std::byte>(&marker, 1));
  return m;
}

TEST(Mailbox, ExactMatchTake) {
  Mailbox mb;
  mb.put(make_msg(1, 10));
  const Message m = mb.take(kWorld, 1, 10);
  EXPECT_EQ(m.source, 1);
  EXPECT_EQ(m.tag, 10);
  EXPECT_EQ(mb.pending(), 0u);
}

TEST(Mailbox, NonMatchingMessageIsSkipped) {
  Mailbox mb;
  mb.put(make_msg(1, 10));
  mb.put(make_msg(2, 20));
  const Message m = mb.take(kWorld, 2, 20);
  EXPECT_EQ(m.source, 2);
  EXPECT_EQ(mb.pending(), 1u);  // the (1, 10) message is still queued
}

TEST(Mailbox, WildcardSource) {
  Mailbox mb;
  mb.put(make_msg(5, 7));
  const Message m = mb.take(kWorld, kAnySource, 7);
  EXPECT_EQ(m.source, 5);
}

TEST(Mailbox, WildcardTag) {
  Mailbox mb;
  mb.put(make_msg(3, 99));
  const Message m = mb.take(kWorld, 3, kAnyTag);
  EXPECT_EQ(m.tag, 99);
}

TEST(Mailbox, DoubleWildcardTakesOldest) {
  Mailbox mb;
  mb.put(make_msg(1, 1, std::byte{0xA}));
  mb.put(make_msg(2, 2, std::byte{0xB}));
  const Message m = mb.take(kWorld, kAnySource, kAnyTag);
  EXPECT_EQ(m.payload()[0], std::byte{0xA});
}

TEST(Mailbox, ContextIsolatesCommunicators) {
  // Identical (source, tag) on two contexts must never cross-match, even
  // under full wildcards.
  Mailbox mb;
  mb.put(make_msg(0, 5, std::byte{0xA}, /*context=*/111));
  mb.put(make_msg(0, 5, std::byte{0xB}, /*context=*/222));
  const Message m222 = mb.take(222, kAnySource, kAnyTag);
  EXPECT_EQ(m222.payload()[0], std::byte{0xB});
  const Message m111 = mb.take(111, 0, 5);
  EXPECT_EQ(m111.payload()[0], std::byte{0xA});
}

TEST(Mailbox, ProbeRespectsContext) {
  Mailbox mb;
  mb.put(make_msg(0, 5, std::byte{0}, /*context=*/7));
  EXPECT_TRUE(mb.probe(7, kAnySource, kAnyTag));
  EXPECT_FALSE(mb.probe(kWorld, kAnySource, kAnyTag));
}

TEST(Mailbox, FifoPerSourceTagPair) {
  // The MPI non-overtaking rule: same (source, tag) delivers in order.
  Mailbox mb;
  mb.put(make_msg(1, 5, std::byte{1}));
  mb.put(make_msg(1, 5, std::byte{2}));
  mb.put(make_msg(1, 5, std::byte{3}));
  EXPECT_EQ(mb.take(kWorld, 1, 5).payload()[0], std::byte{1});
  EXPECT_EQ(mb.take(kWorld, 1, 5).payload()[0], std::byte{2});
  EXPECT_EQ(mb.take(kWorld, 1, 5).payload()[0], std::byte{3});
}

TEST(Mailbox, TryTakeReturnsNulloptWhenEmpty) {
  Mailbox mb;
  EXPECT_FALSE(mb.try_take(kWorld, 0, 0).has_value());
}

TEST(Mailbox, TryTakeMatches) {
  Mailbox mb;
  mb.put(make_msg(4, 4));
  EXPECT_FALSE(mb.try_take(kWorld, 4, 5).has_value());
  EXPECT_TRUE(mb.try_take(kWorld, 4, 4).has_value());
  EXPECT_EQ(mb.pending(), 0u);
}

TEST(Mailbox, ProbeDoesNotConsume) {
  Mailbox mb;
  mb.put(make_msg(1, 1));
  EXPECT_TRUE(mb.probe(kWorld, 1, 1));
  EXPECT_TRUE(mb.probe(kWorld, kAnySource, kAnyTag));
  EXPECT_FALSE(mb.probe(kWorld, 2, 1));
  EXPECT_EQ(mb.pending(), 1u);
}

TEST(Mailbox, BlockingTakeWokenByPut) {
  Mailbox mb;
  std::thread producer([&] { mb.put(make_msg(0, 42)); });
  const Message m = mb.take(kWorld, 0, 42);
  producer.join();
  EXPECT_EQ(m.tag, 42);
}

TEST(Mailbox, AbortUnblocksTake) {
  Mailbox mb;
  std::thread aborter([&] { mb.abort(); });
  EXPECT_THROW(mb.take(kWorld, 0, 0), AbortError);
  aborter.join();
}

TEST(Mailbox, AbortedTryTakeThrows) {
  Mailbox mb;
  mb.abort();
  EXPECT_THROW(mb.try_take(kWorld, 0, 0), AbortError);
}

// -- Message payload storage (inline vs heap) -------------------------------

std::vector<std::byte> pattern_bytes(std::size_t n) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = std::byte(i & 0xFF);
  return v;
}

TEST(MessagePayload, SmallPayloadIsStoredInline) {
  Message m;
  const auto data = pattern_bytes(Message::kInlineCapacity);
  EXPECT_TRUE(m.assign_payload(data));
  EXPECT_TRUE(m.payload_inline());
  EXPECT_EQ(m.payload_size(), data.size());
  EXPECT_TRUE(std::equal(data.begin(), data.end(), m.payload().begin()));
  // No heap buffer to recycle from an inline payload.
  EXPECT_EQ(m.release_storage().capacity(), 0u);
}

TEST(MessagePayload, LargePayloadUsesHeap) {
  Message m;
  const auto data = pattern_bytes(Message::kInlineCapacity + 1);
  EXPECT_FALSE(m.assign_payload(data));
  EXPECT_FALSE(m.payload_inline());
  EXPECT_EQ(m.payload_size(), data.size());
  EXPECT_TRUE(std::equal(data.begin(), data.end(), m.payload().begin()));
}

TEST(MessagePayload, AdoptLargeBufferDoesNotCopy) {
  Message m;
  auto data = pattern_bytes(1024);
  const std::byte* storage = data.data();
  auto leftover = m.adopt_payload(std::move(data));
  EXPECT_TRUE(leftover.empty());  // buffer was adopted
  EXPECT_FALSE(m.payload_inline());
  EXPECT_EQ(m.payload().data(), storage);  // same allocation, no copy
  // take_payload moves the same allocation back out.
  auto out = m.take_payload();
  EXPECT_EQ(out.data(), storage);
}

TEST(MessagePayload, AdoptSmallBufferReturnsItForReuse) {
  Message m;
  auto data = pattern_bytes(8);
  data.reserve(256);
  auto leftover = m.adopt_payload(std::move(data));
  EXPECT_TRUE(m.payload_inline());
  EXPECT_EQ(m.payload_size(), 8u);
  // The caller gets its (capacity-bearing) buffer back for recycling.
  EXPECT_GE(leftover.capacity(), 256u);
}

TEST(MessagePayload, InlinePayloadSurvivesMailboxTransit) {
  Mailbox mb;
  Message m;
  m.context = kWorld;
  m.source = 3;
  m.tag = 9;
  const auto data = pattern_bytes(16);
  m.assign_payload(data);
  mb.put(std::move(m));
  Message got = mb.take(kWorld, 3, 9);
  EXPECT_TRUE(got.payload_inline());
  ASSERT_EQ(got.payload_size(), 16u);
  EXPECT_TRUE(std::equal(data.begin(), data.end(), got.payload().begin()));
}

}  // namespace
