// Stress / soak tests: long interleaved sequences of collectives on the
// world communicator and concurrently on sibling subcommunicators, plus
// point-to-point traffic woven between them.  Any tag/context confusion,
// lost wakeup, or ordering bug in the runtime tends to show up here as a
// deadlock (caught by the test timeout) or a wrong value.
#include <gtest/gtest.h>

#include <vector>

#include "coll/barrier.hpp"
#include "coll/bcast.hpp"
#include "coll/gather.hpp"
#include "coll/local_reduce.hpp"
#include "coll/local_scan.hpp"
#include "mprt/runtime.hpp"
#include "rs/ops/ops.hpp"
#include "rs/reduce.hpp"
#include "rs/scan.hpp"

namespace {

using namespace rsmpi;

TEST(Stress, ManySequentialCollectives) {
  constexpr int kP = 8;
  constexpr int kIters = 200;
  mprt::run(kP, [](mprt::Comm& comm) {
    for (int i = 0; i < kIters; ++i) {
      long v = comm.rank() + i;
      coll::ElementwiseOp<long, coll::Sum<long>> op;
      coll::local_allreduce(comm, std::span<long>(&v, 1), op);
      long want = 0;
      for (int r = 0; r < kP; ++r) want += r + i;
      ASSERT_EQ(v, want) << "iter " << i;

      long s = 1;
      coll::local_xscan(comm, std::span<long>(&s, 1), op);
      ASSERT_EQ(s, comm.rank()) << "iter " << i;
    }
  });
}

TEST(Stress, InterleavedWorldAndSubgroupTraffic) {
  constexpr int kP = 8;
  constexpr int kIters = 60;
  mprt::run(kP, [](mprt::Comm& world) {
    mprt::Comm half = world.split(world.rank() % 2, world.rank());
    for (int i = 0; i < kIters; ++i) {
      // World-wide reduce.
      const long total = coll::local_allreduce_value(
          world, static_cast<long>(world.rank()), coll::Sum<long>{});
      ASSERT_EQ(total, 28);

      // P2P ping between neighbours on the world comm, same tag every
      // iteration (exercises per-pair FIFO).
      const int partner = world.rank() ^ 1;
      const int token =
          world.sendrecv(partner, 9, world.rank() * 1000 + i, partner, 9);
      ASSERT_EQ(token, partner * 1000 + i);

      // Subgroup reduce with identical collective tags running
      // "concurrently" in both halves.
      const long half_total = coll::local_allreduce_value(
          half, static_cast<long>(world.rank()), coll::Sum<long>{});
      ASSERT_EQ(half_total, world.rank() % 2 == 0 ? 0 + 2 + 4 + 6
                                                  : 1 + 3 + 5 + 7);
    }
  });
}

TEST(Stress, GlobalViewOpsBackToBack) {
  constexpr int kP = 6;
  mprt::run(kP, [](mprt::Comm& comm) {
    std::vector<int> mine;
    for (int i = 0; i < 64; ++i) {
      mine.push_back((comm.rank() * 64 + i) * 31 % 257);
    }
    for (int i = 0; i < 40; ++i) {
      const auto mins = rs::reduce(comm, mine, rs::ops::MinK<int>(3));
      ASSERT_EQ(mins.size(), 3u);
      const auto prefix = rs::scan(comm, mine, rs::ops::Sum<long>{});
      ASSERT_EQ(prefix.size(), mine.size());
      const bool sorted = rs::reduce(comm, mine, rs::ops::Sorted<int>{});
      (void)sorted;
    }
  });
}

TEST(Stress, WideMachine) {
  // 64 ranks on a (possibly single-core) host: scheduling pressure on the
  // mailbox wakeups.
  constexpr int kP = 64;
  mprt::run(kP, [](mprt::Comm& comm) {
    const long total = coll::local_allreduce_value(
        comm, static_cast<long>(comm.rank()), coll::Sum<long>{});
    EXPECT_EQ(total, static_cast<long>(kP) * (kP - 1) / 2);
    const long prefix = coll::local_xscan_value(
        comm, static_cast<long>(1), coll::Sum<long>{});
    EXPECT_EQ(prefix, comm.rank());
    coll::barrier(comm);
  });
}

TEST(Stress, RepeatedSplitsDoNotLeakContexts) {
  constexpr int kP = 6;
  mprt::run(kP, [](mprt::Comm& world) {
    for (int i = 0; i < 30; ++i) {
      mprt::Comm sub = world.split(world.rank() % (1 + i % 3), world.rank());
      const long x = coll::local_allreduce_value(
          sub, static_cast<long>(1), coll::Sum<long>{});
      ASSERT_EQ(x, sub.size());
    }
  });
}

TEST(Stress, LargePayloads) {
  // Multi-megabyte broadcast and gather round trips.
  mprt::run(4, [](mprt::Comm& comm) {
    std::vector<std::uint64_t> big(1 << 18);  // 2 MiB
    if (comm.rank() == 0) {
      for (std::size_t i = 0; i < big.size(); ++i) big[i] = i * i;
    }
    coll::bcast_span<std::uint64_t>(comm, 0, big);
    for (std::size_t i = 0; i < big.size(); i += 7777) {
      ASSERT_EQ(big[i], i * i);
    }
    const auto all = coll::gather<std::uint64_t>(
        comm, 0, std::span<const std::uint64_t>(big.data(), 1024));
    if (comm.rank() == 0) {
      ASSERT_EQ(all.size(), 4u * 1024);
    }
  });
}

}  // namespace
