// A non-commutative associative buffer operator for ordering tests:
// 2x2 integer matrices under multiplication.  Any collective schedule that
// combines operands out of order produces a different product, so these
// matrices pin operand ordering exactly.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace rsmpi::test {

/// Buffer layout: row-major [a, b; c, d].  Entries stay small modulo a
/// prime so products cannot overflow during long chains.
struct MatMulOp {
  static constexpr bool commutative = false;
  static constexpr std::int64_t kMod = 1'000'000'007;

  void ident(std::span<std::int64_t> m) const {
    m[0] = 1;
    m[1] = 0;
    m[2] = 0;
    m[3] = 1;
  }

  /// inout = inout * in (left operand covers earlier positions).
  void combine(std::span<std::int64_t> inout,
               std::span<const std::int64_t> in) const {
    const std::int64_t a = inout[0], b = inout[1], c = inout[2], d = inout[3];
    inout[0] = (a * in[0] + b * in[2]) % kMod;
    inout[1] = (a * in[1] + b * in[3]) % kMod;
    inout[2] = (c * in[0] + d * in[2]) % kMod;
    inout[3] = (c * in[1] + d * in[3]) % kMod;
  }
};

/// A distinct matrix per rank, invertible-ish and far from commuting.
inline std::array<std::int64_t, 4> rank_matrix(int rank) {
  const std::int64_t r = rank + 2;
  return {r, 1, r % 3 + 1, r % 5 + 2};
}

/// The ordered product of ranks [0, p) — the serial oracle.
inline std::array<std::int64_t, 4> ordered_product(int p) {
  MatMulOp op;
  std::array<std::int64_t, 4> acc;
  op.ident(acc);
  for (int r = 0; r < p; ++r) {
    const auto m = rank_matrix(r);
    op.combine(acc, m);
  }
  return acc;
}

}  // namespace rsmpi::test
