// Tests for the supporting collectives: barrier, bcast, gather, allgather
// and alltoallv.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

#include "coll/alltoall.hpp"
#include "coll/barrier.hpp"
#include "coll/bcast.hpp"
#include "coll/gather.hpp"
#include "mprt/runtime.hpp"

namespace {

using namespace rsmpi;

class CollectiveSweep : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveSweep, BcastScalarFromEveryRoot) {
  const int p = GetParam();
  mprt::run(p, [p2 = p](mprt::Comm& comm) {
    for (int root = 0; root < p2; ++root) {
      const int v = comm.rank() == root ? root * 100 + 9 : -1;
      EXPECT_EQ(coll::bcast(comm, root, v), root * 100 + 9);
    }
  });
}

TEST_P(CollectiveSweep, BcastSpanInPlace) {
  const int p = GetParam();
  mprt::run(p, [](mprt::Comm& comm) {
    std::vector<double> buf(10);
    if (comm.rank() == 0) {
      std::iota(buf.begin(), buf.end(), 0.5);
    }
    coll::bcast_span<double>(comm, 0, buf);
    for (std::size_t i = 0; i < buf.size(); ++i) {
      EXPECT_DOUBLE_EQ(buf[i], 0.5 + static_cast<double>(i));
    }
  });
}

TEST_P(CollectiveSweep, GatherConcatenatesInRankOrder) {
  const int p = GetParam();
  mprt::run(p, [p2 = p](mprt::Comm& comm) {
    // Variable-length blocks: rank r contributes r+1 copies of r.
    std::vector<int> mine(static_cast<std::size_t>(comm.rank()) + 1,
                          comm.rank());
    const auto all = coll::gather<int>(comm, 0, mine);
    if (comm.rank() == 0) {
      std::vector<int> want;
      for (int r = 0; r < p2; ++r) {
        want.insert(want.end(), static_cast<std::size_t>(r) + 1, r);
      }
      EXPECT_EQ(all, want);
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST_P(CollectiveSweep, AllgatherSameEverywhere) {
  const int p = GetParam();
  mprt::run(p, [p2 = p](mprt::Comm& comm) {
    const auto all = coll::allgather_value(comm, comm.rank() * 2);
    ASSERT_EQ(all.size(), static_cast<std::size_t>(p2));
    for (int r = 0; r < p2; ++r) {
      EXPECT_EQ(all[static_cast<std::size_t>(r)], r * 2);
    }
  });
}

TEST_P(CollectiveSweep, AlltoallvRoutesBlocks) {
  const int p = GetParam();
  mprt::run(p, [p2 = p](mprt::Comm& comm) {
    // Rank s sends to rank d a block of s*p+d repeated (d+1) times.
    std::vector<std::vector<int>> out(static_cast<std::size_t>(p2));
    for (int d = 0; d < p2; ++d) {
      out[static_cast<std::size_t>(d)].assign(static_cast<std::size_t>(d) + 1,
                                              comm.rank() * p2 + d);
    }
    coll::AlltoallvCounts counts;
    const auto in = coll::alltoallv(comm, out, &counts);

    std::vector<int> want;
    for (int s = 0; s < p2; ++s) {
      want.insert(want.end(), static_cast<std::size_t>(comm.rank()) + 1,
                  s * p2 + comm.rank());
      EXPECT_EQ(counts.recv_counts[static_cast<std::size_t>(s)],
                static_cast<std::size_t>(comm.rank()) + 1);
    }
    EXPECT_EQ(in, want);
  });
}

TEST_P(CollectiveSweep, AlltoallvWithEmptyBlocks) {
  const int p = GetParam();
  mprt::run(p, [p2 = p](mprt::Comm& comm) {
    // Only even ranks send, and only to rank 0.
    std::vector<std::vector<int>> out(static_cast<std::size_t>(p2));
    if (comm.rank() % 2 == 0) {
      out[0] = {comm.rank()};
    }
    const auto in = coll::alltoallv(comm, out);
    if (comm.rank() == 0) {
      std::vector<int> want;
      for (int s = 0; s < p2; s += 2) want.push_back(s);
      EXPECT_EQ(in, want);
    } else {
      EXPECT_TRUE(in.empty());
    }
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, CollectiveSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 16));

TEST(Barrier, SynchronizesVirtualClocks) {
  // After a barrier, every rank's virtual clock must be at least the
  // pre-barrier maximum (rank 2's 50s head start).
  mprt::CostModel m = mprt::CostModel::free();
  m.latency_s = 1.0;
  const auto result = mprt::run(
      4,
      [](mprt::Comm& comm) {
        if (comm.rank() == 2) comm.clock().advance(50.0);
        coll::barrier(comm);
        EXPECT_GE(comm.clock().now(), 50.0);
      },
      m);
  EXPECT_GE(result.makespan_s, 50.0);
}

TEST(Barrier, SingleRankIsNoop) {
  const auto result = mprt::run(1, [](mprt::Comm& comm) {
    coll::barrier(comm);
  });
  EXPECT_EQ(result.total_messages, 0u);
}

TEST(Barrier, ActsAsRendezvous) {
  // No rank may pass the barrier until all have arrived: with one rank
  // delayed by real sleep, the others' post-barrier flag reads must see
  // the arrival flag set.
  std::atomic<bool> slow_arrived{false};
  mprt::run(4, [&](mprt::Comm& comm) {
    if (comm.rank() == 3) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      slow_arrived = true;
    }
    coll::barrier(comm);
    EXPECT_TRUE(slow_arrived.load());
  });
}

TEST(Bcast, RootOutOfRangeRejected) {
  EXPECT_THROW(mprt::run(2,
                         [](mprt::Comm& comm) {
                           (void)coll::bcast(comm, 2, 1);
                         }),
               ArgumentError);
}

}  // namespace
