// Semantics of the twelve built-in operators (paper §2.2) and the
// commutativity trait plumbing.
#include <gtest/gtest.h>

#include <cstdint>

#include "coll/buffer_op.hpp"
#include "coll/ops.hpp"

namespace {

using namespace rsmpi::coll;

TEST(BuiltinOps, MaxMin) {
  EXPECT_EQ(Max<int>{}(3, 5), 5);
  EXPECT_EQ(Max<int>{}(Max<int>::identity(), -100), -100);
  EXPECT_EQ(Min<int>{}(3, 5), 3);
  EXPECT_EQ(Min<int>{}(Min<int>::identity(), 100), 100);
  EXPECT_EQ(Max<double>{}(-1.5, -2.5), -1.5);
}

TEST(BuiltinOps, SumProd) {
  EXPECT_EQ(Sum<int>{}(3, 4), 7);
  EXPECT_EQ(Sum<int>::identity(), 0);
  EXPECT_EQ(Prod<int>{}(3, 4), 12);
  EXPECT_EQ(Prod<int>::identity(), 1);
  EXPECT_DOUBLE_EQ(Sum<double>{}(0.5, 0.25), 0.75);
}

TEST(BuiltinOps, Logical) {
  EXPECT_TRUE(LogicalAnd<>{}(true, true));
  EXPECT_FALSE(LogicalAnd<>{}(true, false));
  EXPECT_TRUE(LogicalAnd<>::identity());
  EXPECT_TRUE(LogicalOr<>{}(false, true));
  EXPECT_FALSE(LogicalOr<>::identity());
  EXPECT_TRUE(LogicalXor<>{}(true, false));
  EXPECT_FALSE(LogicalXor<>{}(true, true));
  EXPECT_FALSE(LogicalXor<>::identity());
}

TEST(BuiltinOps, LogicalOnIntegers) {
  // MPI's logical ops act on integers with C truthiness.
  EXPECT_EQ(LogicalAnd<int>{}(3, 2), 1);
  EXPECT_EQ(LogicalAnd<int>{}(3, 0), 0);
  EXPECT_EQ(LogicalXor<int>{}(5, 0), 1);
  EXPECT_EQ(LogicalXor<int>{}(5, 7), 0);
}

TEST(BuiltinOps, Bitwise) {
  EXPECT_EQ(BitAnd<std::uint8_t>{}(0b1100, 0b1010), 0b1000);
  EXPECT_EQ(BitAnd<std::uint8_t>::identity(), 0xFF);
  EXPECT_EQ(BitOr<std::uint8_t>{}(0b1100, 0b1010), 0b1110);
  EXPECT_EQ(BitOr<std::uint8_t>::identity(), 0);
  EXPECT_EQ(BitXor<std::uint8_t>{}(0b1100, 0b1010), 0b0110);
  EXPECT_EQ(BitXor<std::uint8_t>::identity(), 0);
}

TEST(BuiltinOps, MaxLocPrefersSmallerIndexOnTie) {
  const MaxLoc<int> op;
  const ValueLoc<int> a{5, 2};
  const ValueLoc<int> b{5, 7};
  EXPECT_EQ(op(a, b).index, 2);
  EXPECT_EQ(op(b, a).index, 2);
  EXPECT_EQ(op({4, 0}, {5, 9}).index, 9);
  EXPECT_EQ(op(MaxLoc<int>::identity(), a), a);
}

TEST(BuiltinOps, MinLocPrefersSmallerIndexOnTie) {
  const MinLoc<int> op;
  const ValueLoc<int> a{5, 2};
  const ValueLoc<int> b{5, 7};
  EXPECT_EQ(op(a, b).index, 2);
  EXPECT_EQ(op(b, a).index, 2);
  EXPECT_EQ(op({4, 9}, {5, 0}).index, 9);
  EXPECT_EQ(op(MinLoc<int>::identity(), a), a);
}

struct NoTraitOp {
  static int identity() { return 0; }
  int operator()(int a, int b) const { return a + b; }
};
struct FalseTraitOp {
  static constexpr bool commutative = false;
  static int identity() { return 0; }
  int operator()(int a, int /*b*/) const { return a; }
};

TEST(BuiltinOps, CommutativityTraitDefaultsTrue) {
  EXPECT_TRUE(is_commutative<NoTraitOp>());
  EXPECT_FALSE(is_commutative<FalseTraitOp>());
  EXPECT_TRUE(is_commutative<Sum<int>>());
}

TEST(ElementwiseOp, AppliesPerElement) {
  ElementwiseOp<int, Min<int>> op;
  std::vector<int> a = {5, 1, 9};
  const std::vector<int> b = {3, 4, 2};
  op.combine(a, b);
  EXPECT_EQ(a, (std::vector<int>{3, 1, 2}));

  std::vector<int> ident(3);
  op.ident(ident);
  for (int v : ident) EXPECT_EQ(v, Min<int>::identity());
}

TEST(LocalMinK, IdentityIsAllMax) {
  LocalMinK<int> op;
  std::vector<int> buf(4);
  op.ident(buf);
  for (int v : buf) EXPECT_EQ(v, std::numeric_limits<int>::max());
}

TEST(LocalMinK, CombineKeepsKSmallest) {
  LocalMinK<int> op;
  std::vector<int> a = {1, 4, 8, 12};  // ascending, as the op maintains
  const std::vector<int> b = {2, 3, 9, 20};
  op.combine(a, b);
  EXPECT_EQ(a, (std::vector<int>{1, 2, 3, 4}));
}

TEST(LocalMinK, CombineWithIdentityIsNoop) {
  LocalMinK<int> op;
  std::vector<int> a = {1, 4, 8, 12};
  std::vector<int> ident(4);
  op.ident(ident);
  op.combine(a, ident);
  EXPECT_EQ(a, (std::vector<int>{1, 4, 8, 12}));
}

}  // namespace
