// Two-level (topology-aware) allreduce (ISSUE 10): correctness of the
// hierarchical schedule on two-tier cost models, the autotuner's crossover
// to it at scale, and the per-tier traffic accounting.
//
// Correctness is checked against the verify-registry serial oracles: for
// exact operators every bracketing of the ordered combine chain agrees
// with the serial left fold, so the hierarchical schedule — whose
// bracketing differs from the flat schedules' — must still match bit for
// bit, commutative and noncommutative alike, including ragged last nodes.

#include <gtest/gtest.h>

#include <cstdlib>

#include "mprt/cost_model.hpp"
#include "mprt/runtime.hpp"
#include "rs/state_exchange.hpp"
#include "util/error.hpp"
#include "verify/registry.hpp"

namespace {

using namespace rsmpi;
using mprt::Comm;
using mprt::CostModel;
using mprt::ScheduleCost;
using rs::detail::Schedule;

/// Scoped RSMPI_SCHEDULE override (tests in this binary run sequentially,
/// so process-global env is safe here).
class ScopedSchedule {
 public:
  explicit ScopedSchedule(const char* name) {
    ::setenv("RSMPI_SCHEDULE", name, /*overwrite=*/1);
  }
  ~ScopedSchedule() { ::unsetenv("RSMPI_SCHEDULE"); }
};

template <typename Op>
std::vector<rs::reduce_result_t<Op>> run_allreduce(int p,
                                                   const CostModel& model) {
  std::vector<rs::reduce_result_t<Op>> results(static_cast<std::size_t>(p));
  mprt::run(p, [&](Comm& comm) {
    Op op = verify::accumulated<Op>(comm.rank());
    rs::detail::state_allreduce(comm, op, verify::make_prototype<Op>());
    results[static_cast<std::size_t>(comm.rank())] = rs::red_result(op);
  }, model);
  return results;
}

// Forced hierarchical schedule across node shapes — even ranks per node,
// ragged last node, single node, more nodes than a power of two — must
// reproduce the serial oracle on every rank for a commutative operator.
TEST(Hierarchical, ForcedMatchesOracleAcrossNodeShapes) {
  const ScopedSchedule forced("hierarchical");
  struct Shape { int p; int rpn; };
  for (const auto& [p, rpn] :
       {Shape{8, 2}, Shape{8, 4}, Shape{10, 4}, Shape{16, 16}, Shape{13, 3},
        Shape{5, 2}}) {
    const auto results =
        run_allreduce<rs::ops::Counts>(p, CostModel::cluster_of_smp(rpn));
    const auto want = verify::expected_result<rs::ops::Counts>(p);
    for (int r = 0; r < p; ++r) {
      ASSERT_TRUE(results[static_cast<std::size_t>(r)] == want)
          << "p=" << p << " rpn=" << rpn << " rank " << r;
    }
  }
}

// Noncommutative safety: OrderedWord concatenates strings, so any result
// other than the in-rank-order word reveals an out-of-order combine.  The
// forced hierarchical schedule pins its leader tier to the ordered
// binomial and must produce the exact serial word, ragged nodes included.
TEST(Hierarchical, ForcedPreservesNoncommutativeOrder) {
  const ScopedSchedule forced("hierarchical");
  struct Shape { int p; int rpn; };
  for (const auto& [p, rpn] :
       {Shape{10, 4}, Shape{16, 4}, Shape{7, 2}, Shape{9, 3}}) {
    const auto results =
        run_allreduce<verify::OrderedWord>(p, CostModel::cluster_of_smp(rpn));
    const auto want = verify::expected_result<verify::OrderedWord>(p);
    for (int r = 0; r < p; ++r) {
      ASSERT_TRUE(results[static_cast<std::size_t>(r)] == want)
          << "p=" << p << " rpn=" << rpn << " rank " << r;
    }
  }
}

// On a flat model a forced hierarchical request degenerates to one node
// spanning all ranks (rpn = 1 → every rank its own leader): the leader
// tier handles everything, and results still match the oracle.
TEST(Hierarchical, ForcedOnFlatModelStillCorrect) {
  const ScopedSchedule forced("hierarchical");
  const auto results = run_allreduce<rs::ops::Counts>(12, CostModel{});
  const auto want = verify::expected_result<rs::ops::Counts>(12);
  for (int r = 0; r < 12; ++r) {
    ASSERT_TRUE(results[static_cast<std::size_t>(r)] == want) << "rank " << r;
  }
}

// Large partitionable state: the leader-tier cost comparison routes big
// states to a segmented variant instead of whole-state binomial hops.
// Two shapes pin down both segmented tiers with a ~8 KB 1024-bucket
// Counts state:
//   * 3 nodes (p=6, rpn=2): Rabenseifner pays two whole-state fold hops
//     at non-power-of-two node counts, so the ring wins;
//   * 4 nodes (p=8, rpn=2): power-of-two, Rabenseifner wins.
TEST(Hierarchical, SegmentedLeaderTiersMatchOracle) {
  constexpr std::size_t kBuckets = 1024;
  constexpr int kPerRank = 64;
  const std::size_t bytes = rs::part_state_bytes(rs::ops::Counts(kBuckets));

  // The cost model really does pick each segmented tier for its shape.
  const CostModel model = CostModel::cluster_of_smp(2);
  EXPECT_LT(ScheduleCost::hierarchical_leader_ring(model, 3, bytes),
            ScheduleCost::hierarchical_leader_rabenseifner(model, 3, bytes));
  EXPECT_LT(ScheduleCost::hierarchical_leader_ring(model, 3, bytes),
            ScheduleCost::hierarchical_leader_binomial(model, 3, bytes));
  EXPECT_LT(ScheduleCost::hierarchical_leader_rabenseifner(model, 4, bytes),
            ScheduleCost::hierarchical_leader_ring(model, 4, bytes));
  EXPECT_LT(ScheduleCost::hierarchical_leader_rabenseifner(model, 4, bytes),
            ScheduleCost::hierarchical_leader_binomial(model, 4, bytes));

  for (const int p : {6, 8}) {
    // The direct entry point, so no env forcing is needed and the
    // commutative flag is explicit.
    std::vector<std::vector<long>> results(static_cast<std::size_t>(p));
    mprt::run(p, [&](Comm& comm) {
      rs::ops::Counts op(kBuckets);
      for (int i = 0; i < kPerRank; ++i) {
        op.accum((comm.rank() * kPerRank + i * 37) %
                 static_cast<int>(kBuckets));
      }
      rs::detail::state_allreduce_hierarchical(
          comm, op, rs::ops::Counts(kBuckets), /*commutative=*/true);
      results[static_cast<std::size_t>(comm.rank())] = rs::red_result(op);
    }, model);

    rs::ops::Counts serial(kBuckets);
    for (int r = 0; r < p; ++r) {
      for (int i = 0; i < kPerRank; ++i) {
        serial.accum((r * kPerRank + i * 37) % static_cast<int>(kBuckets));
      }
    }
    const auto want = rs::red_result(serial);
    for (int r = 0; r < p; ++r) {
      ASSERT_TRUE(results[static_cast<std::size_t>(r)] == want)
          << "p=" << p << " rank " << r;
    }
  }
}

// The autotuner crossover (acceptance criterion): with asymmetric two-tier
// LogGP parameters and port contention, the hierarchical schedule's
// modelled critical path beats every flat schedule at p >= 256 for a
// bandwidth-relevant state, and choose_allreduce_schedule picks it.  On a
// flat model it must never be picked (it is not even a candidate).
TEST(Hierarchical, AutotunerPicksHierarchicalAtScale) {
  const CostModel smp = CostModel::cluster_of_smp(8);
  constexpr std::size_t kBytes = 64 * 1024;
  constexpr std::size_t kSegment = 4 * 1024;

  for (const int p : {256, 1024, 4096}) {
    const double hier = ScheduleCost::hierarchical(smp, p, kBytes);
    EXPECT_LT(hier, ScheduleCost::butterfly(smp, p, kBytes)) << "p=" << p;
    EXPECT_LT(hier, ScheduleCost::two_message(smp, p, kBytes)) << "p=" << p;
    EXPECT_LT(hier, ScheduleCost::rabenseifner(smp, p, kBytes)) << "p=" << p;
    EXPECT_LT(hier, ScheduleCost::ring(smp, p, kBytes)) << "p=" << p;
    EXPECT_EQ(rs::detail::choose_allreduce_schedule(smp, p, kBytes, kSegment),
              Schedule::kHierarchical)
        << "p=" << p;
  }

  // Small machines stay on flat schedules even under the two-tier model...
  EXPECT_NE(rs::detail::choose_allreduce_schedule(smp, 8, kBytes, kSegment),
            Schedule::kHierarchical);
  // ...and flat models never see the hierarchical candidate at all.
  EXPECT_NE(
      rs::detail::choose_allreduce_schedule(CostModel{}, 1024, kBytes, kSegment),
      Schedule::kHierarchical);
}

// Per-tier traffic accounting: under a two-tier model every sent byte is
// classified intra- or inter-node, the two counters partition the total,
// and both tiers are genuinely exercised by the hierarchical schedule.
// Flat runs must leave both counters at zero.
TEST(Hierarchical, TierByteCountersPartitionTraffic) {
  const ScopedSchedule forced("hierarchical");
  const mprt::RunResult two_tier = mprt::run(8, [](Comm& comm) {
    auto op = verify::accumulated<rs::ops::Counts>(comm.rank());
    rs::detail::state_allreduce(comm, op,
                                verify::make_prototype<rs::ops::Counts>());
  }, CostModel::cluster_of_smp(4));
  EXPECT_GT(two_tier.intra_node_bytes, 0u);
  EXPECT_GT(two_tier.inter_node_bytes, 0u);
  EXPECT_EQ(two_tier.intra_node_bytes + two_tier.inter_node_bytes,
            two_tier.total_bytes);

  const mprt::RunResult flat = mprt::run(8, [](Comm& comm) {
    auto op = verify::accumulated<rs::ops::Counts>(comm.rank());
    rs::detail::state_allreduce(comm, op,
                                verify::make_prototype<rs::ops::Counts>());
  }, CostModel{});
  EXPECT_EQ(flat.intra_node_bytes, 0u);
  EXPECT_EQ(flat.inter_node_bytes, 0u);
}

}  // namespace
