// Deterministic complexity tests: with compute charging off and a pure
// latency model, the modelled makespan of each collective is an exact
// function of its round structure — so O(log p) vs O(p) is a *testable
// property*, not a benchmark observation.
#include <gtest/gtest.h>

#include <cmath>
#include <span>

#include "coll/local_reduce.hpp"
#include "coll/local_scan.hpp"
#include "mprt/runtime.hpp"
#include "mprt/topology.hpp"
#include "rs/ops/ops.hpp"
#include "rs/reduce.hpp"

namespace {

using namespace rsmpi;

/// Pure-latency model: a message hop costs exactly 1 virtual second; all
/// other costs vanish.  Makespans then count critical-path hops.
mprt::CostModel hop_model() {
  mprt::CostModel m = mprt::CostModel::free();
  m.latency_s = 1.0;
  m.compute_scale = 0.0;
  return m;
}

double reduce_makespan(int p, coll::ReduceAlgo algo) {
  const auto result = mprt::run(
      p,
      [algo](mprt::Comm& comm) {
        long v = comm.rank();
        coll::ElementwiseOp<long, coll::Sum<long>> op;
        coll::local_reduce(comm, 0, std::span<long>(&v, 1), op, algo);
      },
      hop_model());
  return result.makespan_s;
}

double xscan_makespan(int p, coll::ScanAlgo algo) {
  const auto result = mprt::run(
      p,
      [algo](mprt::Comm& comm) {
        long v = comm.rank();
        coll::ElementwiseOp<long, coll::Sum<long>> op;
        coll::local_xscan(comm, std::span<long>(&v, 1), op, algo);
      },
      hop_model());
  return result.makespan_s;
}

TEST(Scaling, BinomialReduceCriticalPathIsFloorLog2) {
  // The longest receive-then-send chain in a binomial tree has
  // floor(log2 p) edges: ranks whose partners fall outside [0, p) send
  // without waiting, so non-power-of-two stragglers do not lengthen the
  // chain (rounds are not barriers).
  for (const int p : {2, 3, 4, 5, 8, 9, 16, 31, 32, 64}) {
    const double hops = reduce_makespan(p, coll::ReduceAlgo::kBinomial);
    EXPECT_DOUBLE_EQ(hops, mprt::topology::floor_log2(p)) << "p=" << p;
  }
}

TEST(Scaling, LinearReduceCriticalPathIsOneHopFanIn) {
  // All sends are concurrent; the chain is the root's sequential receives,
  // but arrival times all equal 1 hop — the makespan is 1, while the
  // *work* at the root is p-1 receives.  The distinguishing cost of the
  // linear algorithm is therefore its message count at one node.
  for (const int p : {2, 4, 8, 16}) {
    EXPECT_DOUBLE_EQ(reduce_makespan(p, coll::ReduceAlgo::kLinear), 1.0)
        << "p=" << p;
  }
}

TEST(Scaling, LinearReduceSerializesUnderReceiveOverhead) {
  // Once receiving costs CPU time (o_r > 0), the root's fan-in serializes
  // and the linear algorithm's makespan grows linearly in p, while the
  // binomial tree's stays logarithmic — the reason for log trees.
  mprt::CostModel m = mprt::CostModel::free();
  m.latency_s = 1.0;
  m.recv_overhead_s = 1.0;
  m.compute_scale = 0.0;

  auto makespan = [&](int p, coll::ReduceAlgo algo) {
    return mprt::run(
               p,
               [algo](mprt::Comm& comm) {
                 long v = comm.rank();
                 coll::ElementwiseOp<long, coll::Sum<long>> op;
                 coll::local_reduce(comm, 0, std::span<long>(&v, 1), op,
                                    algo);
               },
               m)
        .makespan_s;
  };

  // Linear: root receives p-1 messages back to back.
  EXPECT_DOUBLE_EQ(makespan(16, coll::ReduceAlgo::kLinear), 1.0 + 15.0);
  EXPECT_DOUBLE_EQ(makespan(32, coll::ReduceAlgo::kLinear), 1.0 + 31.0);
  // Binomial: log2(p) rounds of (hop + one receive).
  EXPECT_DOUBLE_EQ(makespan(16, coll::ReduceAlgo::kBinomial), 4.0 * 2.0);
  EXPECT_DOUBLE_EQ(makespan(32, coll::ReduceAlgo::kBinomial), 5.0 * 2.0);
}

TEST(Scaling, HillisSteeleScanCriticalPathIsFloorLog2) {
  // Same argument as the binomial tree: each round's send happens before
  // that round's receive, so the dependency chain is floor(log2 p) hops.
  for (const int p : {2, 3, 4, 7, 8, 16, 33, 64}) {
    EXPECT_DOUBLE_EQ(xscan_makespan(p, coll::ScanAlgo::kHillisSteele),
                     mprt::topology::floor_log2(p))
        << "p=" << p;
  }
}

TEST(Scaling, BlellochScanIsTwoLog2Rounds) {
  // The span/work tradeoff, span side: up-sweep log2(p) chained hops,
  // down-sweep log2(p) more.
  for (const int p : {2, 4, 8, 16, 32, 64}) {
    EXPECT_DOUBLE_EQ(xscan_makespan(p, coll::ScanAlgo::kBlelloch),
                     2.0 * mprt::topology::floor_log2(p))
        << "p=" << p;
  }
}

TEST(Scaling, BlellochScanUsesThreePMinusOneMessages) {
  // The span/work tradeoff, work side: 3(p-1) messages, versus recursive
  // doubling's sum over rounds of (p - d).
  for (const int p : {2, 4, 8, 16, 32}) {
    const auto result = mprt::run(
        p,
        [](mprt::Comm& comm) {
          long v = comm.rank();
          coll::ElementwiseOp<long, coll::Sum<long>> op;
          coll::local_xscan(comm, std::span<long>(&v, 1), op,
                            coll::ScanAlgo::kBlelloch);
        },
        hop_model());
    EXPECT_EQ(result.total_messages, static_cast<std::uint64_t>(3 * (p - 1)))
        << "p=" << p;
  }
}

TEST(Scaling, LinearScanIsPMinusOneHops) {
  for (const int p : {2, 4, 8, 16, 32}) {
    EXPECT_DOUBLE_EQ(xscan_makespan(p, coll::ScanAlgo::kLinear), p - 1.0)
        << "p=" << p;
  }
}

TEST(Scaling, GlobalReduceIsTwoLogPhases) {
  // reduce-to-0 (ceil log2 p hops) + broadcast (ceil log2 p hops).
  for (const int p : {2, 4, 8, 16, 32}) {
    const auto result = mprt::run(
        p,
        [](mprt::Comm& comm) {
          const std::vector<long> mine = {comm.rank()};
          // Concat-free op with a deterministic ordered schedule:
          (void)rs::reduce(comm, mine, rs::ops::Sorted<long>{});
        },
        hop_model());
    EXPECT_DOUBLE_EQ(result.makespan_s,
                     2.0 * mprt::topology::num_rounds(p))
        << "p=" << p;
  }
}

TEST(Scaling, MessageCountsAreExact) {
  // Binomial reduce: p-1 messages total.  Hillis-Steele xscan: p - 1 - ...
  // precisely sum over rounds of (p - d) sends.
  for (const int p : {2, 3, 4, 8, 13, 16}) {
    const auto red = mprt::run(
        p,
        [](mprt::Comm& comm) {
          long v = 1;
          coll::ElementwiseOp<long, coll::Sum<long>> op;
          coll::local_reduce(comm, 0, std::span<long>(&v, 1), op,
                             coll::ReduceAlgo::kBinomial);
        },
        hop_model());
    EXPECT_EQ(red.total_messages, static_cast<std::uint64_t>(p - 1))
        << "p=" << p;

    std::uint64_t want_scan_msgs = 0;
    for (int d = 1; d < p; d <<= 1) {
      want_scan_msgs += static_cast<std::uint64_t>(p - d);
    }
    const auto scn = mprt::run(
        p,
        [](mprt::Comm& comm) {
          long v = 1;
          coll::ElementwiseOp<long, coll::Sum<long>> op;
          coll::local_xscan(comm, std::span<long>(&v, 1), op,
                            coll::ScanAlgo::kHillisSteele);
        },
        hop_model());
    EXPECT_EQ(scn.total_messages, want_scan_msgs) << "p=" << p;
  }
}

TEST(Scaling, FortyReductionsCostFortyTrees) {
  // The MG §4.2 story in its purest form: k successive scalar allreduces
  // cost exactly k times one allreduce.
  auto k_allreduces = [&](int p, int k) {
    return mprt::run(
               p,
               [k](mprt::Comm& comm) {
                 for (int i = 0; i < k; ++i) {
                   long v = comm.rank();
                   coll::ElementwiseOp<long, coll::Max<long>> op;
                   coll::local_allreduce(comm, std::span<long>(&v, 1), op,
                                         coll::ReduceAlgo::kBinomial);
                 }
               },
               hop_model())
        .makespan_s;
  };
  const int p = 16;
  const double one = k_allreduces(p, 1);
  EXPECT_DOUBLE_EQ(k_allreduces(p, 40), 40.0 * one);
}

}  // namespace
