// Property tests for LOCAL_SCAN / LOCAL_XSCAN: both algorithms, sweeping
// rank counts, must produce the rank-prefix combinations — with exclusive
// rank 0 at the identity — for commutative and non-commutative operators.
#include <gtest/gtest.h>

#include <array>
#include <tuple>

#include "coll/local_scan.hpp"
#include "mprt/runtime.hpp"
#include "tests/coll/test_matrix_op.hpp"

namespace {

using namespace rsmpi;
using coll::ScanAlgo;

constexpr std::array kAlgos = {ScanAlgo::kAuto, ScanAlgo::kLinear,
                               ScanAlgo::kHillisSteele, ScanAlgo::kBlelloch};

const char* algo_name(ScanAlgo a) {
  switch (a) {
    case ScanAlgo::kAuto: return "auto";
    case ScanAlgo::kLinear: return "linear";
    case ScanAlgo::kHillisSteele: return "hillis_steele";
    case ScanAlgo::kBlelloch: return "blelloch";
  }
  return "?";
}

class ScanSweep : public ::testing::TestWithParam<std::tuple<int, ScanAlgo>> {
};

TEST_P(ScanSweep, InclusiveSumIsRankPrefix) {
  const auto [p, algo] = GetParam();
  mprt::run(p, [a = algo](mprt::Comm& comm) {
    long v = comm.rank() + 1;
    coll::ElementwiseOp<long, coll::Sum<long>> op;
    coll::local_scan(comm, std::span<long>(&v, 1), op, a);
    const long r = comm.rank() + 1;
    EXPECT_EQ(v, r * (r + 1) / 2) << "algo=" << algo_name(a);
  });
}

TEST_P(ScanSweep, ExclusiveSumIsLowerRankPrefix) {
  const auto [p, algo] = GetParam();
  mprt::run(p, [a = algo](mprt::Comm& comm) {
    long v = comm.rank() + 1;
    coll::ElementwiseOp<long, coll::Sum<long>> op;
    coll::local_xscan(comm, std::span<long>(&v, 1), op, a);
    const long r = comm.rank();
    EXPECT_EQ(v, r * (r + 1) / 2) << "algo=" << algo_name(a);
  });
}

TEST_P(ScanSweep, ExclusiveRankZeroGetsIdentity) {
  const auto [p, algo] = GetParam();
  mprt::run(p, [a = algo](mprt::Comm& comm) {
    int v = 42;
    coll::ElementwiseOp<int, coll::Min<int>> op;
    coll::local_xscan(comm, std::span<int>(&v, 1), op, a);
    if (comm.rank() == 0) {
      EXPECT_EQ(v, coll::Min<int>::identity()) << "algo=" << algo_name(a);
    }
  });
}

TEST_P(ScanSweep, InclusiveEqualsExclusivePlusOwn) {
  // The paper's derivation: inclusive[i] = exclusive[i] (+) a[i], locally
  // and without communication.
  const auto [p, algo] = GetParam();
  mprt::run(p, [a = algo](mprt::Comm& comm) {
    const long mine = (comm.rank() + 2) * 3;
    long incl = mine;
    long excl = mine;
    coll::ElementwiseOp<long, coll::Sum<long>> op;
    coll::local_scan(comm, std::span<long>(&incl, 1), op, a);
    coll::local_xscan(comm, std::span<long>(&excl, 1), op, a);
    EXPECT_EQ(incl, excl + mine) << "algo=" << algo_name(a);
  });
}

TEST_P(ScanSweep, AggregatedScanIsElementwise) {
  const auto [p, algo] = GetParam();
  constexpr int kWidth = 5;
  mprt::run(p, [a = algo](mprt::Comm& comm) {
    std::vector<long> v(kWidth);
    for (int i = 0; i < kWidth; ++i) {
      v[static_cast<std::size_t>(i)] = comm.rank() * 100 + i;
    }
    coll::ElementwiseOp<long, coll::Sum<long>> op;
    coll::local_scan(comm, std::span<long>(v), op, a);
    for (int i = 0; i < kWidth; ++i) {
      long expect = 0;
      for (int r = 0; r <= comm.rank(); ++r) expect += r * 100 + i;
      EXPECT_EQ(v[static_cast<std::size_t>(i)], expect)
          << "algo=" << algo_name(a) << " elt=" << i;
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ScanSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 7, 8, 16),
                       ::testing::ValuesIn(kAlgos)),
    [](const auto& inf) {
      return "p" + std::to_string(std::get<0>(inf.param)) + "_" +
             algo_name(std::get<1>(inf.param));
    });

// -- Non-commutative ordering ------------------------------------------------

class NonCommutativeScan
    : public ::testing::TestWithParam<std::tuple<int, ScanAlgo>> {};

TEST_P(NonCommutativeScan, InclusiveMatrixPrefixes) {
  const auto [p, algo] = GetParam();
  mprt::run(p, [a = algo](mprt::Comm& comm) {
    auto m = test::rank_matrix(comm.rank());
    coll::local_scan(comm, std::span<std::int64_t>(m), test::MatMulOp{}, a);
    const auto want = test::ordered_product(comm.rank() + 1);
    EXPECT_EQ(m, want) << "rank=" << comm.rank() << " algo=" << algo_name(a);
  });
}

TEST_P(NonCommutativeScan, ExclusiveMatrixPrefixes) {
  const auto [p, algo] = GetParam();
  mprt::run(p, [a = algo](mprt::Comm& comm) {
    auto m = test::rank_matrix(comm.rank());
    coll::local_xscan(comm, std::span<std::int64_t>(m), test::MatMulOp{}, a);
    const auto want = test::ordered_product(comm.rank());
    EXPECT_EQ(m, want) << "rank=" << comm.rank() << " algo=" << algo_name(a);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NonCommutativeScan,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 8, 13, 16),
                       ::testing::ValuesIn(kAlgos)),
    [](const auto& inf) {
      return "p" + std::to_string(std::get<0>(inf.param)) + "_" +
             algo_name(std::get<1>(inf.param));
    });

TEST(LocalScan, ScalarConvenienceWrappers) {
  mprt::run(5, [](mprt::Comm& comm) {
    const long incl =
        coll::local_scan_value(comm, 1L, coll::Sum<long>{});
    EXPECT_EQ(incl, comm.rank() + 1);
    const long excl =
        coll::local_xscan_value(comm, 1L, coll::Sum<long>{});
    EXPECT_EQ(excl, comm.rank());
  });
}

}  // namespace
