// Tests for the nonblocking collectives (coll/nb): request handles, the
// per-rank progress engine, and the ibarrier/ibcast/iallreduce/ireduce
// state machines — including out-of-order completion and subcommunicators.
#include <gtest/gtest.h>

#include <array>
#include <numeric>
#include <vector>

#include "coll/local_reduce.hpp"
#include "coll/nb/iallreduce.hpp"
#include "coll/nb/ibarrier.hpp"
#include "coll/nb/ibcast.hpp"
#include "mprt/runtime.hpp"
#include "tests/coll/test_matrix_op.hpp"
#include "util/error.hpp"

namespace {

using namespace rsmpi;
using mprt::Comm;

using SumOp = coll::ElementwiseOp<int, coll::Sum<int>>;

TEST(Ibarrier, CompletesOnEveryRank) {
  mprt::run(8, [](Comm& comm) {
    auto req = coll::nb::ibarrier(comm);
    req.wait();
    EXPECT_TRUE(req.done());
    EXPECT_EQ(coll::nb::ProgressEngine::current().in_flight(), 0u);
  });
}

TEST(Ibarrier, BackToBackBarriersDoNotCross) {
  mprt::run(5, [](Comm& comm) {
    for (int i = 0; i < 4; ++i) {
      auto req = coll::nb::ibarrier(comm);
      req.wait();
    }
  });
}

TEST(Ibcast, DeliversRootBuffer) {
  mprt::run(7, [](Comm& comm) {
    const int root = 2;
    std::vector<int> buf(16, 0);
    if (comm.rank() == root) {
      std::iota(buf.begin(), buf.end(), 100);
    }
    auto req = coll::nb::ibcast_span<int>(comm, root, buf);
    req.wait();
    std::vector<int> expected(16);
    std::iota(expected.begin(), expected.end(), 100);
    EXPECT_EQ(buf, expected);
  });
}

TEST(Ibcast, RejectsBadRoot) {
  mprt::run(2, [](Comm& comm) {
    std::vector<int> buf(4, 0);
    EXPECT_THROW(coll::nb::ibcast_span<int>(comm, 5, buf), ArgumentError);
  });
}

TEST(Iallreduce, BinomialMatchesBlocking) {
  mprt::run(6, [](Comm& comm) {
    std::vector<int> mine(8);
    for (std::size_t i = 0; i < mine.size(); ++i) {
      mine[i] = comm.rank() * 10 + static_cast<int>(i);
    }
    std::vector<int> blocking = mine;
    coll::local_allreduce(comm, std::span<int>(blocking), SumOp{});

    auto req = coll::nb::iallreduce(comm, std::span<int>(mine), SumOp{});
    req.wait();
    EXPECT_EQ(mine, blocking);
  });
}

TEST(Iallreduce, RabenseifnerMatchesBlocking) {
  // 6 ranks exercises the non-power-of-two fold/unfold.
  mprt::run(6, [](Comm& comm) {
    std::vector<double> mine(10);
    for (std::size_t i = 0; i < mine.size(); ++i) {
      mine[i] = comm.rank() + 0.25 * static_cast<double>(i);
    }
    std::vector<double> blocking = mine;
    coll::local_allreduce_rabenseifner(
        comm, std::span<double>(blocking),
        coll::ElementwiseOp<double, coll::Sum<double>>{});

    auto req = coll::nb::iallreduce(
        comm, std::span<double>(mine),
        coll::ElementwiseOp<double, coll::Sum<double>>{},
        coll::nb::IAllreduceAlgo::kRabenseifner);
    req.wait();
    EXPECT_EQ(mine, blocking);
  });
}

TEST(Iallreduce, RabenseifnerRejectsNonCommutative) {
  mprt::run(4, [](Comm& comm) {
    auto m = test::rank_matrix(comm.rank());
    EXPECT_THROW(coll::nb::iallreduce(comm, std::span<std::int64_t>(m),
                                      test::MatMulOp{},
                                      coll::nb::IAllreduceAlgo::kRabenseifner),
                 ArgumentError);
  });
}

TEST(Iallreduce, PreservesOrderForNonCommutative) {
  mprt::run(5, [](Comm& comm) {
    auto m = test::rank_matrix(comm.rank());
    auto req =
        coll::nb::iallreduce(comm, std::span<std::int64_t>(m),
                             test::MatMulOp{});
    req.wait();
    const auto expected = test::ordered_product(comm.size());
    EXPECT_EQ(m, expected);
  });
}

TEST(Ireduce, NonCommutativeToNonzeroRoot) {
  // Exercises the reduce-to-zero + forward path.
  mprt::run(6, [](Comm& comm) {
    const int root = 3;
    auto m = test::rank_matrix(comm.rank());
    auto req = coll::nb::ireduce(comm, root, std::span<std::int64_t>(m),
                                 test::MatMulOp{});
    req.wait();
    if (comm.rank() == root) {
      EXPECT_EQ(m, test::ordered_product(comm.size()));
    }
  });
}

TEST(Ireduce, CommutativeSumAtRoot) {
  mprt::run(4, [](Comm& comm) {
    std::array<int, 3> mine = {comm.rank(), 1, 2 * comm.rank()};
    auto req = coll::nb::ireduce(comm, 2, std::span<int>(mine), SumOp{});
    req.wait();
    if (comm.rank() == 2) {
      const int p = comm.size();
      EXPECT_EQ(mine[0], p * (p - 1) / 2);
      EXPECT_EQ(mine[1], p);
      EXPECT_EQ(mine[2], p * (p - 1));
    }
  });
}

TEST(Ireduce, RejectsBadRoot) {
  mprt::run(2, [](Comm& comm) {
    std::array<int, 1> v = {1};
    EXPECT_THROW(coll::nb::ireduce(comm, -1, std::span<int>(v), SumOp{}),
                 ArgumentError);
  });
}

TEST(Progress, OutOfOrderCompletion) {
  mprt::run(8, [](Comm& comm) {
    std::vector<int> a(4, comm.rank());
    std::vector<int> b(4, 2 * comm.rank() + 1);
    auto ra = coll::nb::iallreduce(comm, std::span<int>(a), SumOp{});
    auto rb = coll::nb::iallreduce(comm, std::span<int>(b), SumOp{});
    // Wait on the second first: the engine must progress both without the
    // first's messages blocking the second's.
    rb.wait();
    ra.wait();
    const int p = comm.size();
    EXPECT_EQ(a, std::vector<int>(4, p * (p - 1) / 2));
    EXPECT_EQ(b, std::vector<int>(4, p * p));
  });
}

TEST(Progress, WaitAllAndTestAny) {
  mprt::run(6, [](Comm& comm) {
    std::vector<int> a(2, 1);
    std::vector<int> b(2, 2);
    std::array<coll::nb::Request, 3> reqs = {
        coll::nb::iallreduce(comm, std::span<int>(a), SumOp{}),
        coll::nb::ibarrier(comm),
        coll::nb::iallreduce(comm, std::span<int>(b), SumOp{}),
    };
    int first_done = -1;
    while (first_done == -1) {
      first_done = coll::nb::test_any(std::span<coll::nb::Request>(reqs));
    }
    EXPECT_GE(first_done, 0);
    EXPECT_LT(first_done, 3);
    coll::nb::wait_all(std::span<coll::nb::Request>(reqs));
    const int p = comm.size();
    EXPECT_EQ(a, std::vector<int>(2, p));
    EXPECT_EQ(b, std::vector<int>(2, 2 * p));
  });
}

TEST(Progress, NullRequestIsComplete) {
  coll::nb::Request req;
  EXPECT_FALSE(req.valid());
  EXPECT_TRUE(req.done());
  EXPECT_TRUE(req.test());
  req.wait();  // must not hang
}

TEST(Progress, SingleRankCompletesInline) {
  mprt::run(1, [](Comm& comm) {
    std::vector<int> v(3, 7);
    auto req = coll::nb::iallreduce(comm, std::span<int>(v), SumOp{});
    EXPECT_TRUE(req.done());
    EXPECT_EQ(v, std::vector<int>(3, 7));
  });
}

TEST(Subcomm, OverlappingIallreducesOnSiblings) {
  // Even and odd ranks form sibling communicators; each subgroup runs its
  // own iallreduce while one on the parent is also in flight, and ranks
  // complete the two in opposite orders.
  mprt::run(8, [](Comm& comm) {
    Comm sub = comm.split(comm.rank() % 2, comm.rank());
    std::vector<int> sub_buf(4, comm.rank());
    std::vector<int> world_buf(4, 1);
    auto sub_req = coll::nb::iallreduce(sub, std::span<int>(sub_buf),
                                        SumOp{});
    auto world_req = coll::nb::iallreduce(comm, std::span<int>(world_buf),
                                          SumOp{});
    if (comm.rank() % 2 == 0) {
      sub_req.wait();
      world_req.wait();
    } else {
      world_req.wait();
      sub_req.wait();
    }
    // Even ranks sum 0+2+4+6, odd ranks 1+3+5+7.
    const int expected_sub = comm.rank() % 2 == 0 ? 12 : 16;
    EXPECT_EQ(sub_buf, std::vector<int>(4, expected_sub));
    EXPECT_EQ(world_buf, std::vector<int>(4, comm.size()));
  });
}

TEST(Subcomm, PendingTableTracksInFlightOps) {
  mprt::run(4, [](Comm& comm) {
    std::vector<int> v(2, 1);
    auto req = coll::nb::iallreduce(comm, std::span<int>(v), SumOp{});
    if (!req.done()) {
      EXPECT_GE(comm.pending_op_count(), 1u);
      EXPECT_GE(comm.pending_ops()[0].first_tag, Comm::kCollectiveTagBase);
      EXPECT_EQ(comm.pending_ops()[0].tag_count, 2);
    }
    req.wait();
    EXPECT_EQ(comm.pending_op_count(), 0u);
  });
}

}  // namespace
