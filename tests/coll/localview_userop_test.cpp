// Local-view user-defined operators through every routine (paper §2):
// Listing 1's mink as a buffer operator driven by LOCAL_REDUCE,
// LOCAL_ALLREDUCE, LOCAL_SCAN and LOCAL_XSCAN, plus the blockwise
// aggregation of §2.1 through the scans.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "coll/buffer_op.hpp"
#include "coll/local_reduce.hpp"
#include "coll/local_scan.hpp"
#include "mprt/runtime.hpp"

namespace {

using namespace rsmpi;

/// Rank r's contribution: an ascending k-vector.
std::vector<int> rank_kvec(int rank, std::size_t k) {
  std::vector<int> v(k);
  for (std::size_t i = 0; i < k; ++i) {
    v[i] = static_cast<int>(((rank + 1) * 37 + static_cast<int>(i) * 11) %
                            100 +
                            static_cast<int>(i) * 100);
  }
  std::sort(v.begin(), v.end());
  return v;
}

/// Oracle: k smallest over the pooled vectors of ranks [lo, hi].
std::vector<int> pooled_kmin(int lo, int hi, std::size_t k) {
  std::vector<int> pool;
  for (int r = lo; r <= hi; ++r) {
    const auto v = rank_kvec(r, k);
    pool.insert(pool.end(), v.begin(), v.end());
  }
  std::sort(pool.begin(), pool.end());
  pool.resize(k);
  return pool;
}

class LocalViewUserOp : public ::testing::TestWithParam<int> {};

TEST_P(LocalViewUserOp, MinkReduce) {
  const int p = GetParam();
  constexpr std::size_t kK = 5;
  const auto want = pooled_kmin(0, p - 1, kK);
  mprt::run(p, [&](mprt::Comm& comm) {
    auto v = rank_kvec(comm.rank(), kK);
    coll::local_reduce(comm, 0, std::span<int>(v), coll::LocalMinK<int>{});
    if (comm.rank() == 0) {
      EXPECT_EQ(v, want);
    }
  });
}

TEST_P(LocalViewUserOp, MinkAllreduce) {
  const int p = GetParam();
  constexpr std::size_t kK = 4;
  const auto want = pooled_kmin(0, p - 1, kK);
  mprt::run(p, [&](mprt::Comm& comm) {
    auto v = rank_kvec(comm.rank(), kK);
    coll::local_allreduce(comm, std::span<int>(v), coll::LocalMinK<int>{});
    EXPECT_EQ(v, want);
  });
}

TEST_P(LocalViewUserOp, MinkInclusiveScanIsPrefixPool) {
  const int p = GetParam();
  constexpr std::size_t kK = 4;
  mprt::run(p, [&](mprt::Comm& comm) {
    auto v = rank_kvec(comm.rank(), kK);
    coll::local_scan(comm, std::span<int>(v), coll::LocalMinK<int>{});
    EXPECT_EQ(v, pooled_kmin(0, comm.rank(), kK)) << "rank " << comm.rank();
  });
}

TEST_P(LocalViewUserOp, MinkExclusiveScanIsLowerPrefixPool) {
  const int p = GetParam();
  constexpr std::size_t kK = 3;
  mprt::run(p, [&](mprt::Comm& comm) {
    auto v = rank_kvec(comm.rank(), kK);
    coll::local_xscan(comm, std::span<int>(v), coll::LocalMinK<int>{});
    if (comm.rank() == 0) {
      // Identity: all sentinels.
      for (int x : v) EXPECT_EQ(x, std::numeric_limits<int>::max());
    } else {
      EXPECT_EQ(v, pooled_kmin(0, comm.rank() - 1, kK));
    }
  });
}

TEST_P(LocalViewUserOp, BlockwiseMinkScan) {
  // §2.1's aggregated mink, now through a scan: m independent k-minimum
  // prefixes in one buffer.
  const int p = GetParam();
  constexpr std::size_t kK = 3, kM = 2;
  mprt::run(p, [&](mprt::Comm& comm) {
    std::vector<int> buf;
    for (std::size_t m = 0; m < kM; ++m) {
      for (std::size_t i = 0; i < kK; ++i) {
        buf.push_back(static_cast<int>(1000 * m) +
                      rank_kvec(comm.rank(), kK)[i]);
      }
    }
    coll::BlockwiseOp<int, coll::LocalMinK<int>> op{kK};
    coll::local_scan(comm, std::span<int>(buf), op);
    for (std::size_t m = 0; m < kM; ++m) {
      const auto want = pooled_kmin(0, comm.rank(), kK);
      for (std::size_t i = 0; i < kK; ++i) {
        EXPECT_EQ(buf[m * kK + i], static_cast<int>(1000 * m) + want[i])
            << "block " << m << " pos " << i;
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, LocalViewUserOp,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 16));

}  // namespace
