// Property tests for LOCAL_REDUCE / LOCAL_ALLREDUCE: every algorithm, over
// a sweep of rank counts and roots, must match the sequential left-fold —
// including for non-commutative operators, which pin operand order.
#include <gtest/gtest.h>

#include <array>
#include <tuple>
#include <vector>

#include "coll/local_reduce.hpp"
#include "mprt/runtime.hpp"
#include "tests/coll/test_matrix_op.hpp"

namespace {

using namespace rsmpi;
using coll::ReduceAlgo;

constexpr std::array kAlgos = {ReduceAlgo::kAuto, ReduceAlgo::kLinear,
                               ReduceAlgo::kBinomial,
                               ReduceAlgo::kUnorderedTree};

const char* algo_name(ReduceAlgo a) {
  switch (a) {
    case ReduceAlgo::kAuto: return "auto";
    case ReduceAlgo::kLinear: return "linear";
    case ReduceAlgo::kBinomial: return "binomial";
    case ReduceAlgo::kUnorderedTree: return "unordered";
  }
  return "?";
}

class ReduceSweep
    : public ::testing::TestWithParam<std::tuple<int, ReduceAlgo>> {};

TEST_P(ReduceSweep, ScalarSumMatchesClosedForm) {
  const auto [p, algo] = GetParam();
  mprt::run(p, [&, p2 = p, a = algo](mprt::Comm& comm) {
    // Each rank contributes rank+1; reduce to every possible root.
    for (int root = 0; root < p2; ++root) {
      long v = comm.rank() + 1;
      coll::ElementwiseOp<long, coll::Sum<long>> op;
      coll::local_reduce(comm, root, std::span<long>(&v, 1), op, a);
      if (comm.rank() == root) {
        EXPECT_EQ(v, static_cast<long>(p2) * (p2 + 1) / 2)
            << "p=" << p2 << " algo=" << algo_name(a) << " root=" << root;
      }
    }
  });
}

TEST_P(ReduceSweep, AllreduceLeavesResultEverywhere) {
  const auto [p, algo] = GetParam();
  mprt::run(p, [p2 = p, a = algo](mprt::Comm& comm) {
    long v = (comm.rank() + 7) * 3;
    long expect = 0;
    for (int r = 0; r < p2; ++r) expect = std::max(expect, (r + 7L) * 3);
    coll::ElementwiseOp<long, coll::Max<long>> op;
    coll::local_allreduce(comm, std::span<long>(&v, 1), op, a);
    EXPECT_EQ(v, expect) << "p=" << p2 << " algo=" << algo_name(a);
  });
}

TEST_P(ReduceSweep, AggregatedElementwiseMin) {
  // §2.1 aggregation: many element-wise reductions in one call.
  const auto [p, algo] = GetParam();
  constexpr int kWidth = 17;
  mprt::run(p, [p2 = p, a = algo](mprt::Comm& comm) {
    std::vector<int> v(kWidth);
    for (int i = 0; i < kWidth; ++i) {
      v[static_cast<std::size_t>(i)] = ((comm.rank() + 3) * (i + 11)) % 101;
    }
    coll::ElementwiseOp<int, coll::Min<int>> op;
    coll::local_allreduce(comm, std::span<int>(v), op, a);
    for (int i = 0; i < kWidth; ++i) {
      int expect = std::numeric_limits<int>::max();
      for (int r = 0; r < p2; ++r) {
        expect = std::min(expect, ((r + 3) * (i + 11)) % 101);
      }
      EXPECT_EQ(v[static_cast<std::size_t>(i)], expect)
          << "p=" << p2 << " algo=" << algo_name(a) << " elt=" << i;
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ReduceSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 7, 8, 16),
                       ::testing::ValuesIn(kAlgos)),
    [](const auto& inf) {
      return "p" + std::to_string(std::get<0>(inf.param)) + "_" +
             algo_name(std::get<1>(inf.param));
    });

// -- Non-commutative ordering ------------------------------------------------

class NonCommutativeReduce : public ::testing::TestWithParam<int> {};

TEST_P(NonCommutativeReduce, BinomialPreservesRankOrder) {
  const int p = GetParam();
  const auto want = test::ordered_product(p);
  mprt::run(p, [&](mprt::Comm& comm) {
    auto m = test::rank_matrix(comm.rank());
    coll::local_reduce(comm, 0, std::span<std::int64_t>(m),
                       test::MatMulOp{}, ReduceAlgo::kBinomial);
    if (comm.rank() == 0) {
      EXPECT_EQ(m, want) << "p=" << p;
    }
  });
}

TEST_P(NonCommutativeReduce, LinearPreservesRankOrderAtAnyRoot) {
  const int p = GetParam();
  const auto want = test::ordered_product(p);
  mprt::run(p, [&](mprt::Comm& comm) {
    const int root = p - 1;
    auto m = test::rank_matrix(comm.rank());
    coll::local_reduce(comm, root, std::span<std::int64_t>(m),
                       test::MatMulOp{}, ReduceAlgo::kLinear);
    if (comm.rank() == root) {
      EXPECT_EQ(m, want) << "p=" << p;
    }
  });
}

TEST_P(NonCommutativeReduce, AutoRoutesToOrderedScheduleAtNonzeroRoot) {
  const int p = GetParam();
  const auto want = test::ordered_product(p);
  mprt::run(p, [&](mprt::Comm& comm) {
    const int root = p / 2;
    auto m = test::rank_matrix(comm.rank());
    coll::local_reduce(comm, root, std::span<std::int64_t>(m),
                       test::MatMulOp{}, ReduceAlgo::kAuto);
    if (comm.rank() == root) {
      EXPECT_EQ(m, want) << "p=" << p;
    }
  });
}

TEST_P(NonCommutativeReduce, AllreduceMatchesOrderedProduct) {
  const int p = GetParam();
  const auto want = test::ordered_product(p);
  mprt::run(p, [&](mprt::Comm& comm) {
    auto m = test::rank_matrix(comm.rank());
    coll::local_allreduce(comm, std::span<std::int64_t>(m),
                          test::MatMulOp{});
    EXPECT_EQ(m, want) << "p=" << p << " rank=" << comm.rank();
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, NonCommutativeReduce,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 12, 16,
                                           17));

TEST(LocalReduce, UnorderedTreeRejectsNonCommutativeOps) {
  EXPECT_THROW(
      mprt::run(2,
                [](mprt::Comm& comm) {
                  auto m = test::rank_matrix(comm.rank());
                  coll::local_reduce(comm, 0, std::span<std::int64_t>(m),
                                     test::MatMulOp{},
                                     ReduceAlgo::kUnorderedTree);
                }),
      ArgumentError);
}

TEST(LocalReduce, RootOutOfRangeRejected) {
  EXPECT_THROW(mprt::run(2,
                         [](mprt::Comm& comm) {
                           long v = 1;
                           coll::ElementwiseOp<long, coll::Sum<long>> op;
                           coll::local_reduce(comm, 2, std::span<long>(&v, 1),
                                              op);
                         }),
               ArgumentError);
}

TEST(LocalReduce, ScalarConvenienceWrappers) {
  mprt::run(4, [](mprt::Comm& comm) {
    const long sum = coll::local_allreduce_value(
        comm, static_cast<long>(comm.rank() + 1), coll::Sum<long>{});
    EXPECT_EQ(sum, 10);
    const long got = coll::local_reduce_value(
        comm, 0, static_cast<long>(comm.rank()), coll::Max<long>{});
    if (comm.rank() == 0) {
      EXPECT_EQ(got, 3);
    }
  });
}

TEST(LocalReduce, MinLocFindsGlobalWinner) {
  mprt::run(6, [](mprt::Comm& comm) {
    // Rank 4 holds the smallest value.
    const coll::ValueLoc<int> mine{comm.rank() == 4 ? -5 : comm.rank() * 10,
                                   static_cast<long>(comm.rank())};
    const auto best = coll::local_allreduce_value(
        comm, mine, coll::MinLoc<int>{});
    EXPECT_EQ(best.value, -5);
    EXPECT_EQ(best.index, 4);
  });
}

}  // namespace
