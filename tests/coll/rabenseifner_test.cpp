// Tests for the Rabenseifner allreduce: correctness against the oracle
// over rank/size sweeps, the commutativity precondition, and the
// bandwidth property that justifies the algorithm, asserted exactly on
// the virtual clock.
#include <gtest/gtest.h>

#include <limits>
#include <tuple>
#include <vector>

#include "coll/local_reduce.hpp"
#include "coll/rabenseifner.hpp"
#include "mprt/runtime.hpp"
#include "tests/coll/test_matrix_op.hpp"

namespace {

using namespace rsmpi;

class RabenseifnerSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RabenseifnerSweep, MatchesElementwiseOracle) {
  const auto [p, width] = GetParam();
  mprt::run(p, [p2 = p, w = width](mprt::Comm& comm) {
    std::vector<long> v(static_cast<std::size_t>(w));
    for (int i = 0; i < w; ++i) {
      v[static_cast<std::size_t>(i)] = (comm.rank() + 1) * (i + 1);
    }
    coll::ElementwiseOp<long, coll::Sum<long>> op;
    coll::local_allreduce_rabenseifner(comm, std::span<long>(v), op);
    for (int i = 0; i < w; ++i) {
      long want = 0;
      for (int r = 0; r < p2; ++r) want += static_cast<long>(r + 1) * (i + 1);
      ASSERT_EQ(v[static_cast<std::size_t>(i)], want)
          << "p=" << p2 << " width=" << w << " elt=" << i;
    }
  });
}

TEST_P(RabenseifnerSweep, AgreesWithBinomialAllreduce) {
  const auto [p, width] = GetParam();
  mprt::run(p, [w = width](mprt::Comm& comm) {
    std::vector<int> a(static_cast<std::size_t>(w));
    for (int i = 0; i < w; ++i) {
      a[static_cast<std::size_t>(i)] =
          ((comm.rank() + 3) * (i + 7)) % 251 - 100;
    }
    std::vector<int> b = a;
    coll::ElementwiseOp<int, coll::Min<int>> op;
    coll::local_allreduce_rabenseifner(comm, std::span<int>(a), op);
    coll::local_allreduce(comm, std::span<int>(b), op,
                          coll::ReduceAlgo::kBinomial);
    EXPECT_EQ(a, b);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RabenseifnerSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 12, 16),
                       ::testing::Values(1, 3, 16, 257)),
    [](const auto& inf) {
      return "p" + std::to_string(std::get<0>(inf.param)) + "_w" +
             std::to_string(std::get<1>(inf.param));
    });

TEST(Rabenseifner, RejectsNonCommutativeOps) {
  EXPECT_THROW(mprt::run(2,
                         [](mprt::Comm& comm) {
                           auto m = test::rank_matrix(comm.rank());
                           coll::local_allreduce_rabenseifner(
                               comm, std::span<std::int64_t>(m),
                               test::MatMulOp{});
                         }),
               ArgumentError);
}

TEST(Rabenseifner, MovesLessDataThanTreeForLargePayloads) {
  // The point of the algorithm: per-rank traffic is ~2n elements instead
  // of the tree's ~2n·log2(p) on the root path.  Compare modelled times
  // under a pure-bandwidth cost model (latency 0, 1 s per byte).
  mprt::CostModel bw = mprt::CostModel::free();
  bw.per_byte_s = 1.0;
  bw.compute_scale = 0.0;

  constexpr int kP = 16;
  constexpr int kWidth = 1 << 12;

  auto run_algo = [&](bool rabenseifner) {
    return mprt::run(
               kP,
               [rabenseifner](mprt::Comm& comm) {
                 std::vector<long> v(kWidth, comm.rank());
                 coll::ElementwiseOp<long, coll::Sum<long>> op;
                 if (rabenseifner) {
                   coll::local_allreduce_rabenseifner(
                       comm, std::span<long>(v), op);
                 } else {
                   coll::local_allreduce(comm, std::span<long>(v), op,
                                         coll::ReduceAlgo::kBinomial);
                 }
               },
               bw)
        .makespan_s;
  };

  const double t_rab = run_algo(true);
  const double t_tree = run_algo(false);
  // Tree: 2*log2(16) = 8 full-buffer hops.  Rabenseifner: halves +
  // quarters + ... ~ 2*(1 - 1/p) buffers < 2.  Require at least a 3x win.
  EXPECT_LT(t_rab * 3.0, t_tree);
}

TEST(Rabenseifner, ExactTrafficOnPowerOfTwo) {
  // Total elements sent across all ranks in the core phases: each of the
  // 2*log2(p) rounds moves p half/quarter/... buffers; closed form is
  // 2 * n * (p - 1) elements.  (Latency-free model, measured in bytes.)
  constexpr int kP = 8;
  constexpr std::size_t kWidth = 64;
  const auto result = mprt::run(kP, [](mprt::Comm& comm) {
    std::vector<long> v(kWidth, comm.rank());
    coll::ElementwiseOp<long, coll::Sum<long>> op;
    coll::local_allreduce_rabenseifner(comm, std::span<long>(v), op);
  });
  EXPECT_EQ(result.total_bytes,
            2 * kWidth * sizeof(long) * (kP - 1));
}

TEST(Rabenseifner, ChunkStartSurvivesHugeElementCounts) {
  // Regression: chunk_start once computed n * c in 64-bit arithmetic, so
  // element counts above 2^62 wrapped and chunk boundaries collapsed to 0.
  // The 128-bit form must return exact boundaries right up to SIZE_MAX.
  constexpr std::size_t kHuge = std::size_t{1} << 62;
  EXPECT_EQ(coll::detail::chunk_start(kHuge, 4, 0), 0u);
  EXPECT_EQ(coll::detail::chunk_start(kHuge, 4, 1), kHuge / 4);
  EXPECT_EQ(coll::detail::chunk_start(kHuge, 4, 2), kHuge / 2);
  // The old overflow witness: n * c = 2^64 wrapped to 0, so the final
  // boundary came back 0 instead of n and every "chunk" was empty.
  EXPECT_EQ(coll::detail::chunk_start(kHuge, 4, 4), kHuge);

  // c == chunks must always be the exact end of the buffer, and the
  // boundaries must stay monotone, even at SIZE_MAX.
  constexpr std::size_t kMax = std::numeric_limits<std::size_t>::max();
  EXPECT_EQ(coll::detail::chunk_start(kMax, 16, 16), kMax);
  std::size_t prev = 0;
  for (int c = 0; c <= 16; ++c) {
    const std::size_t b = coll::detail::chunk_start(kMax, 16, c);
    EXPECT_GE(b, prev) << "c=" << c;
    prev = b;
  }
}

TEST(Rabenseifner, BufferSmallerThanRankCount) {
  // Zero-size chunks must be handled (n < p).
  mprt::run(8, [](mprt::Comm& comm) {
    std::vector<long> v = {static_cast<long>(comm.rank()), 7};
    coll::ElementwiseOp<long, coll::Max<long>> op;
    coll::local_allreduce_rabenseifner(comm, std::span<long>(v), op);
    EXPECT_EQ(v[0], 7);
    EXPECT_EQ(v[1], 7);
  });
}

}  // namespace
